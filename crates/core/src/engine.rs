//! The Group-FEL training engine — Algorithm 1 of the paper.
//!
//! ```text
//! form groups per edge server            (Lines 2–3, [`form_groups_per_edge`])
//! p = Sampling-Prob(G)                   (Line 4, `SamplingStrategy`)
//! for t in 0..T:
//!     sample S_t ⊆ G by p                (Line 6)
//!     for g in S_t, in parallel:         (Lines 7–14)
//!         x_g ← x_t
//!         for k in 0..K:
//!             every client: E epochs SGD (Line 13, `LocalUpdate`)
//!             x_g ← Σ n_i/n_g x_i        (Line 14, optionally via SecAgg)
//!     x_{t+1} ← Σ w_g x_g                (Line 15 / Eq. 4 / Eq. 35)
//! ```
//!
//! Every group's participation is charged to the cost ledger per Eq. 5,
//! with the strategy's own group-operation mix and per-sample training
//! factor (§7.1: "different quadratic cost functions for each method").

use gfl_data::poison::Trigger;
use gfl_data::{ClientPartition, Dataset, FedData, LabelMatrix, VirtualPopulation};
use gfl_defense::DefenseCost;
use gfl_faults::{
    summarize_attacks, AdversaryPlan, AttackEvent, AttackKind, ChurnPlan, DefenseStage, FaultEvent,
    FaultInjector, FaultPlan, FaultPolicy,
};
use gfl_nn::sgd::LrSchedule;
use gfl_nn::{Network, Params};
use gfl_obs::{RoundMetrics, SpanAttrs, SpanKind, TraceCollector};
use gfl_sim::{CommModel, CostLedger, CostModel, Task, Topology};
use gfl_tensor::init;
use gfl_tensor::{ops, Scalar};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

use crate::cov::group_cov;
use crate::grouping::{GroupingAlgorithm, PartitionError};
use crate::history::{AsrRecord, RoundRecord, RunHistory};
use crate::local::{BufPool, LocalScratch, LocalTask, LocalUpdate, ScratchPool};
use crate::membership::{MembershipState, RegroupPolicy};
use crate::sampling::{
    aggregation_weights_into, sample_without_replacement, AggregationWeighting, SamplingStrategy,
};
use crate::Group;

/// Hyperparameters of Algorithm 1 plus simulation knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupFelConfig {
    /// Global rounds `T`.
    pub global_rounds: usize,
    /// Group rounds per global round `K` (paper: 5).
    pub group_rounds: usize,
    /// Local epochs per group round `E` (paper: 2).
    pub local_rounds: usize,
    /// Groups sampled per global round `S = |S_t|` (paper: 12 of 60).
    pub sampled_groups: usize,
    /// Minibatch size for local SGD.
    pub batch_size: usize,
    /// Learning-rate schedule over global rounds.
    pub lr: LrSchedule,
    /// Global aggregation weighting (Line 15 / Eq. 4 / Eq. 35).
    pub weighting: AggregationWeighting,
    /// Evaluate the global model every this many rounds (1 = every round).
    pub eval_every: usize,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Which task's cost table to charge (Vision/Speech).
    pub task: Task,
    /// Stop once the ledger exceeds this budget (the paper's 10⁶-unit
    /// budget in Table 1), `None` = run all `T` rounds.
    pub cost_budget: Option<f64>,
    /// Route group aggregation through the real pairwise-masking SecAgg
    /// protocol instead of plain weighted averaging (slower; validates the
    /// privacy path end-to-end — results are identical up to f32 rounding).
    pub secure_aggregation: bool,
    /// Probability that a client drops out of a group round after training
    /// started (device churn). Dropped clients are excluded from the group
    /// aggregation; with `secure_aggregation` on, the server runs the
    /// protocol's dropout-recovery path. 0.0 disables churn.
    pub dropout_prob: f64,
}

impl GroupFelConfig {
    /// The paper's §7.2 configuration (K=5, E=2, 12 of 60 groups, 10⁶
    /// budget) with a modest default round count.
    pub fn paper_vision() -> Self {
        Self {
            global_rounds: 200,
            group_rounds: 5,
            local_rounds: 2,
            sampled_groups: 12,
            batch_size: 32,
            lr: LrSchedule::Constant(0.05),
            weighting: AggregationWeighting::Stabilized,
            eval_every: 5,
            seed: 42,
            task: Task::Vision,
            cost_budget: Some(1e6),
            secure_aggregation: false,
            dropout_prob: 0.0,
        }
    }

    /// A tiny configuration for tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            global_rounds: 4,
            group_rounds: 2,
            local_rounds: 1,
            sampled_groups: 2,
            batch_size: 16,
            lr: LrSchedule::Constant(0.1),
            weighting: AggregationWeighting::Standard,
            eval_every: 1,
            seed: 7,
            task: Task::Vision,
            cost_budget: None,
            secure_aggregation: false,
            dropout_prob: 0.0,
        }
    }
}

/// Runs a grouping algorithm independently on every edge server's clients
/// (Algorithm 1, Lines 2–3) and returns groups in *global* client ids.
pub fn form_groups_per_edge(
    algo: &dyn GroupingAlgorithm,
    topology: &Topology,
    labels: &LabelMatrix,
    seed: u64,
) -> Vec<Group> {
    let mut groups = Vec::new();
    for j in 0..topology.num_edges() {
        let members = topology.clients_of(j);
        let local = labels.restrict(members);
        let mut rng = init::rng(seed ^ (0x9E37_79B9 ^ (j as u64) << 32));
        for group in algo.form_groups(&local, &mut rng) {
            groups.push(group.into_iter().map(|i| members[i]).collect());
        }
    }
    groups
}

/// The Group-FEL trainer: owns the model, the federated data layout, and
/// the test set.
pub struct Trainer {
    pub(crate) config: GroupFelConfig,
    pub(crate) model: Network,
    pub(crate) data: FedData,
    pub(crate) test: Dataset,
    pub(crate) faults: Option<FaultState>,
    /// Link model used for byte accounting on clean runs; faulted runs use
    /// the fault state's (possibly customized) model instead.
    comm: CommModel,
    pub(crate) churn: Option<ChurnState>,
    pub(crate) adversary: Option<AdversaryState>,
    robust_agg: RobustAggRule,
    scratch: ScratchPool,
    /// Parameter-length `Vec<Scalar>` buffers (group models, slot bufs,
    /// Line-15 weight/probability scratch), recycled across rounds.
    param_pool: BufPool<Scalar>,
    /// `Vec<usize>` buffers (outcome member lists, ledger size scratch,
    /// virtual-shard label and index vectors).
    member_pool: BufPool<usize>,
    /// Feature-row backing buffers for on-demand virtual shards, recycled
    /// so a steady-state round materializes into warm capacity.
    shard_pool: BufPool<Scalar>,
    /// Per-group slot-shell `Vec<Slot>` buffers.
    slot_pool: BufPool<Slot>,
    /// Evaluation workspaces for the per-round test/ASR evaluations.
    eval_pool: gfl_nn::EvalPool,
    pub(crate) obs: Option<Arc<TraceCollector>>,
}

/// A structurally invalid [`GroupFelConfig`] / data combination, caught by
/// [`Trainer::try_new`] before any training state is built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `global_rounds` is 0 — the run would produce an empty trajectory.
    ZeroGlobalRounds,
    /// `group_rounds` is 0 — groups would never train (Line 10's `K`).
    ZeroGroupRounds,
    /// `eval_every` is 0 — the evaluation cadence would divide by zero.
    ZeroEvalCadence,
    /// The model's input width does not match the dataset's feature width.
    DimensionMismatch { model: usize, data: usize },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroGlobalRounds => write!(f, "global_rounds must be positive"),
            ConfigError::ZeroGroupRounds => write!(f, "group_rounds must be positive"),
            ConfigError::ZeroEvalCadence => write!(f, "eval_every must be positive"),
            ConfigError::DimensionMismatch { model, data } => write!(
                f,
                "model/data dimension mismatch: model expects {model} features, data has {data}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fault-injection context of a faulted run: the decision oracle, the
/// degradation policy, and the models needed to turn decisions into
/// wall-clock estimates (straggler deadlines, retry accounting).
pub(crate) struct FaultState {
    pub(crate) injector: FaultInjector,
    pub(crate) policy: FaultPolicy,
    pub(crate) comm: CommModel,
    pub(crate) cost: CostModel,
    pub(crate) edge_of_client: Vec<usize>,
}

/// Group-level aggregation rule (Line 14). [`RobustAggRule::Mean`] is the
/// paper's sample-weighted average; the rest are the Byzantine-robust
/// estimators from `gfl-defense`, applied unweighted over the round's
/// surviving client updates. Robust rules need at least 3 survivors and
/// fall back to the weighted mean below that; they are skipped under
/// `secure_aggregation`, which only supports linear aggregation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RobustAggRule {
    /// Sample-weighted FedAvg (the paper's Line 14).
    #[default]
    Mean,
    /// Coordinate-wise median.
    CoordinateMedian,
    /// Coordinate-wise mean after trimming the `trim` extremes per side
    /// (clamped so at least one value survives).
    TrimmedMean { trim: usize },
    /// The single Krum-selected update, tolerating `byzantine` attackers
    /// (clamped to the survivor count − 3).
    Krum { byzantine: usize },
    /// Mean of the `select` best updates by Krum score.
    MultiKrum { byzantine: usize, select: usize },
    /// FLAME-style cosine-clustering filter (`gfl_defense::filter_updates`)
    /// over the survivors' *deltas*, then a sample-weighted mean of the
    /// accepted (clipped) deltas. The only rule that reports which clients
    /// it rejected, feeding the attack log's `AttackFiltered` events.
    FlameFilter,
}

/// Applies a (non-Mean) robust rule to the survivors, clamping its
/// breakdown parameters to what the survivor count supports.
fn robust_aggregate(rule: RobustAggRule, updates: &[Vec<Scalar>]) -> Vec<Scalar> {
    let n = updates.len();
    match rule {
        RobustAggRule::Mean => unreachable!("Mean is handled by the weighted path"),
        RobustAggRule::FlameFilter => {
            unreachable!("FlameFilter is handled by the filtering path")
        }
        RobustAggRule::CoordinateMedian => gfl_defense::robust::coordinate_median(updates),
        RobustAggRule::TrimmedMean { trim } => {
            gfl_defense::robust::trimmed_mean(updates, trim.min((n - 1) / 2))
        }
        RobustAggRule::Krum { byzantine } => {
            let f = byzantine.min(n.saturating_sub(3));
            updates[gfl_defense::robust::krum(updates, f)].clone()
        }
        RobustAggRule::MultiKrum { byzantine, select } => {
            let f = byzantine.min(n.saturating_sub(3));
            gfl_defense::robust::multi_krum(updates, f, select.clamp(1, n))
        }
    }
}

/// Churn context of a self-healing run: the membership plan plus the
/// policy governing when the partition is repaired.
pub(crate) struct ChurnState {
    pub(crate) plan: ChurnPlan,
    pub(crate) policy: RegroupPolicy,
}

/// A compromised client's pre-poisoned local shard. Materialized once at
/// [`Trainer::with_adversary`] time — the poisoned subset is a pure
/// function of the plan, so poisoning at build time (rather than per
/// round) changes nothing about the campaign and keeps `run_unit` cheap.
struct PoisonedShard {
    /// The client's local data with the campaign applied in place.
    data: Dataset,
    /// Row indices into `data` (always `0..data.len()`), standing in for
    /// the honest client's `partition.indices`.
    indices: Vec<usize>,
    /// How many rows the campaign actually touched.
    rows: usize,
    kind: AttackKind,
}

/// Adversary context of an attacked run: the campaign plan, every data
/// poisoner's pre-built shard, and the held-out attack-success evaluation
/// sets. All of it derives from the plan seed alone — no engine RNG stream
/// is consumed, so a clean plan leaves runs bit-identical.
pub(crate) struct AdversaryState {
    pub(crate) plan: AdversaryPlan,
    shards: HashMap<usize, PoisonedShard>,
    /// The backdoor trigger pattern. Virtual populations have no prebuilt
    /// shards, so `run_unit` re-applies the campaign to freshly derived
    /// rows with this — bitwise what `with_adversary` would have baked in.
    trigger: Trigger,
    /// Triggered non-target test samples, relabelled to the trigger
    /// target: accuracy on this set *is* the backdoor attack success rate.
    pub(crate) trigger_eval: Option<Dataset>,
    /// Test samples of the flip source class, relabelled to the flip
    /// target: accuracy on this set is the label-flip success rate.
    pub(crate) flip_eval: Option<Dataset>,
}

/// Result of one group's work within a global round.
pub(crate) struct GroupOutcome {
    /// Global group index (for fault attribution).
    pub(crate) group: usize,
    pub(crate) params: Params,
    pub(crate) samples: usize,
    pub(crate) train_loss: Scalar,
    pub(crate) members: Vec<usize>,
    /// Surviving uploads across all `K` group rounds.
    pub(crate) uploads: usize,
    /// Sample-weighted surviving uploads across all `K` group rounds
    /// (out of `K · n_g`); the quorum test's numerator.
    pub(crate) upload_samples: usize,
    /// Faults that hit this group, in deterministic (k, member) order.
    pub(crate) events: Vec<FaultEvent>,
    /// Attacks injected (and filtered) in this group, same ordering.
    pub(crate) attacks: Vec<AttackEvent>,
    /// Measured defense-filter work across the group's `K` group rounds.
    pub(crate) defense: DefenseCost,
}

/// Precomputed time-domain straggler cuts for one group's `K` group
/// rounds: `by_round[k]` lists `(member_index, slowdown)` pairs whose
/// reports missed group round `k`'s quorum-or-deadline close. Produced by
/// the semi-async scheduler's timing pass and applied verbatim inside
/// `run_unit`, replacing the lockstep path's in-unit deadline estimate.
#[derive(Debug, Clone, Default)]
pub(crate) struct GroupCuts {
    pub(crate) by_round: Vec<Vec<(usize, f64)>>,
}

impl GroupCuts {
    fn cut_for(&self, k: usize, member: usize) -> Option<f64> {
        self.by_round
            .get(k)?
            .iter()
            .find(|&&(m, _)| m == member)
            .map(|&(_, s)| s)
    }
}

/// One client's fixed result slot within a group round. Workers write
/// their slot and nothing else; the sequential reducer drains slots in
/// member order, so the aggregate is independent of execution order.
struct Slot {
    /// The trained local model. Reused across group rounds — a client's
    /// parameter buffer is allocated once per (group, round), not once per
    /// (group, round, k).
    buf: Params,
    /// Whether `buf` holds a surviving update this group round.
    live: bool,
    /// At most one fault can hit a client per group round.
    event: Option<FaultEvent>,
    /// At most one attack (injection or interception) per group round.
    attack: Option<AttackEvent>,
    /// Local training loss, if the client trained on any data (recorded
    /// even when the update is later rejected as corrupt, matching the
    /// sequential engine).
    loss: Option<Scalar>,
}

/// Per-group mutable state threaded through the `K` group rounds.
struct GroupCtx<'g> {
    gi: usize,
    group: &'g [usize],
    group_params: Params,
    slots: Vec<Slot>,
    deadline: Option<(f64, f64)>,
    loss_acc: Scalar,
    loss_n: u32,
    uploads: usize,
    upload_samples: usize,
    events: Vec<FaultEvent>,
    attacks: Vec<AttackEvent>,
    defense: DefenseCost,
    n_g: usize,
}

/// One schedulable work unit: a single client's local training within one
/// group round. Units across *all* groups go onto one work-stealing queue,
/// so a straggling large group no longer serializes the round.
struct Unit<'a> {
    gi: usize,
    client: usize,
    /// The group model this client starts from (`x^g_{t,k}`).
    start: &'a [Scalar],
    deadline: Option<(f64, f64)>,
    /// Semi-async only: `Some(slowdown)` when the event-driven timing pass
    /// already decided this client's report missed the group-round close.
    timed_cut: Option<f64>,
    slot: &'a mut Slot,
}

/// What one global round reports back to its driver loop.
struct RoundReport {
    /// The cost budget is exhausted; stop the run.
    over_budget: bool,
    /// Groups drawn this round (Line 6), before outage/empty filtering.
    sampled: Vec<usize>,
    /// Sampled groups whose survivor quorum failed (health-monitor feed).
    quorum_missed: Vec<usize>,
}

impl Trainer {
    /// [`Trainer::try_new`] that panics on an invalid configuration.
    pub fn new(
        config: GroupFelConfig,
        model: Network,
        train: Dataset,
        partition: ClientPartition,
        test: Dataset,
    ) -> Self {
        Self::try_new(config, model, train, partition, test)
            .unwrap_or_else(|e| panic!("invalid Group-FEL configuration: {e}"))
    }

    /// Validates the configuration against the data and builds a trainer,
    /// returning a typed [`ConfigError`] instead of panicking. Zero-round
    /// configurations (`global_rounds = 0`) are rejected here: they would
    /// otherwise produce an empty [`RunHistory`] that downstream consumers
    /// (reports, checkpoints, golden traces) cannot interpret.
    pub fn try_new(
        config: GroupFelConfig,
        model: Network,
        train: Dataset,
        partition: ClientPartition,
        test: Dataset,
    ) -> Result<Self, ConfigError> {
        Self::try_from_data(
            config,
            model,
            FedData::Materialized { train, partition },
            test,
        )
    }

    /// [`Trainer::try_new_virtual`] that panics on an invalid configuration.
    pub fn new_virtual(
        config: GroupFelConfig,
        model: Network,
        population: VirtualPopulation,
        test: Dataset,
    ) -> Self {
        Self::try_new_virtual(config, model, population, test)
            .unwrap_or_else(|e| panic!("invalid Group-FEL configuration: {e}"))
    }

    /// [`Trainer::try_new`] over a [`VirtualPopulation`]: no client rows
    /// exist up front; each round derives shards for exactly the sampled
    /// clients and releases them afterwards, so steady-state memory is
    /// O(sampled clients), not O(population).
    pub fn try_new_virtual(
        config: GroupFelConfig,
        model: Network,
        population: VirtualPopulation,
        test: Dataset,
    ) -> Result<Self, ConfigError> {
        Self::try_from_data(config, model, FedData::Virtual(population), test)
    }

    fn try_from_data(
        config: GroupFelConfig,
        model: Network,
        data: FedData,
        test: Dataset,
    ) -> Result<Self, ConfigError> {
        if model.input_dim() != data.feature_dim() {
            return Err(ConfigError::DimensionMismatch {
                model: model.input_dim(),
                data: data.feature_dim(),
            });
        }
        if config.global_rounds == 0 {
            return Err(ConfigError::ZeroGlobalRounds);
        }
        if config.group_rounds == 0 {
            return Err(ConfigError::ZeroGroupRounds);
        }
        if config.eval_every == 0 {
            return Err(ConfigError::ZeroEvalCadence);
        }
        Ok(Self {
            config,
            model,
            data,
            test,
            faults: None,
            comm: CommModel::edge_default(),
            churn: None,
            adversary: None,
            robust_agg: RobustAggRule::Mean,
            scratch: ScratchPool::new(),
            param_pool: BufPool::new(),
            member_pool: BufPool::new(),
            shard_pool: BufPool::new(),
            slot_pool: BufPool::new(),
            eval_pool: gfl_nn::EvalPool::new(),
            obs: None,
        })
    }

    /// The link model charged for byte accounting: the fault state's when
    /// faults are enabled (it also drives upload retries there), the
    /// trainer's default otherwise, so clean and faulted runs price
    /// traffic identically.
    pub(crate) fn comm_model(&self) -> &CommModel {
        match &self.faults {
            Some(fs) => &fs.comm,
            None => &self.comm,
        }
    }

    /// Attaches a [`TraceCollector`]: every subsequent run records spans,
    /// per-round metrics, and event tallies into it. Observation is strictly
    /// one-way — nothing the collector measures feeds back into simulation
    /// state — so traced runs are bit-identical to untraced ones (asserted
    /// by the determinism suite). Without a collector the instrumentation
    /// path is a `None` check: no allocations, no atomics on the hot loop.
    pub fn with_observer(mut self, obs: Arc<TraceCollector>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Enables deterministic fault injection for every subsequent run.
    ///
    /// The `topology` maps clients to edge servers so outage windows know
    /// which groups they take down. Fault decisions never consume the
    /// engine's RNG streams, so a faulted run with `FaultPlan::none()` is
    /// bit-identical to a clean one, and two faulted runs with the same
    /// seeds and plan are bit-identical to each other.
    pub fn with_faults(
        mut self,
        plan: FaultPlan,
        policy: FaultPolicy,
        topology: &Topology,
    ) -> Self {
        plan.validate()
            .unwrap_or_else(|e| panic!("invalid FaultPlan: {e}"));
        policy
            .validate()
            .unwrap_or_else(|e| panic!("invalid FaultPolicy: {e}"));
        let mut edge_of_client = vec![0usize; self.data.num_clients()];
        for j in 0..topology.num_edges() {
            for &c in topology.clients_of(j) {
                edge_of_client[c] = j;
            }
        }
        self.faults = Some(FaultState {
            injector: FaultInjector::new(plan),
            policy,
            comm: CommModel::edge_default(),
            cost: CostModel::for_task(self.config.task),
            edge_of_client,
        });
        self
    }

    /// Enables membership churn + self-healing for the
    /// [`Trainer::run_self_healing`] entry points. Like fault injection,
    /// churn decisions are pure hashes of the plan seed — a clean plan
    /// (or a disabled policy on a clean plan) leaves every run
    /// bit-identical to one without churn machinery.
    pub fn with_churn(mut self, plan: ChurnPlan, policy: RegroupPolicy) -> Self {
        plan.validate();
        self.churn = Some(ChurnState { plan, policy });
        self
    }

    /// Enables a deterministic poisoning campaign for every subsequent
    /// run. Compromised clients and their poisoned rows are pure hashes of
    /// the plan seed, so shards and attack-success evaluation sets are
    /// materialized once, here; training then swaps them in at the client
    /// update boundary. No engine RNG stream is consumed — a run with
    /// [`AdversaryPlan::none`] is bit-identical to one without this call,
    /// and attacked runs replay bit-identically at any thread count.
    ///
    /// Composes with faults, churn, robust aggregation, and
    /// `secure_aggregation` (data/model poison happens *before* masking,
    /// so attacks survive SecAgg — exactly the threat model that motivates
    /// running a defense inside the group).
    ///
    /// # Panics
    /// Panics when the plan's knobs are out of range
    /// ([`AdversaryPlan::validate`]) or a trigger/flip label is outside
    /// the dataset's class range.
    pub fn with_adversary(mut self, plan: AdversaryPlan) -> Self {
        plan.validate();
        if plan.is_clean() {
            self.adversary = None;
            return self;
        }
        let classes = self.data.num_classes();
        if plan.backdoor_fraction > 0.0 {
            assert!(plan.trigger_target < classes, "trigger target out of range");
            assert!(
                plan.trigger_width <= self.data.feature_dim(),
                "trigger wider than the feature space"
            );
        }
        if plan.label_flip_fraction > 0.0 {
            assert!(
                plan.flip_from < classes && plan.flip_to < classes,
                "flip labels out of range"
            );
        }
        let trigger = Trigger::corner(plan.trigger_width, plan.trigger_target);
        // Materialized federations pre-poison their compromised shards
        // here; virtual ones poison on the fly in `run_unit`, where the
        // shard is derived (same picks, same rows — `poisons_row` is a
        // pure hash of the plan seed either way).
        let mut shards = HashMap::new();
        if let FedData::Materialized { train, partition } = &self.data {
            for (client, indices) in partition.indices.iter().enumerate() {
                let kind = match plan.kind(client) {
                    Some(k @ (AttackKind::Backdoor | AttackKind::LabelFlip)) => k,
                    _ => continue,
                };
                if indices.is_empty() {
                    continue;
                }
                let local = train.subset(indices);
                let mut features = local.features().clone();
                let mut labels = local.labels().to_vec();
                let picked: Vec<usize> = (0..local.len())
                    .filter(|&r| plan.poisons_row(client, r))
                    .collect();
                let rows = match kind {
                    AttackKind::Backdoor => {
                        trigger.apply(&mut features, &mut labels, &picked);
                        picked.len()
                    }
                    AttackKind::LabelFlip => gfl_data::poison::label_flip(
                        &mut labels,
                        &picked,
                        plan.flip_from,
                        plan.flip_to,
                    ),
                    AttackKind::ModelPoison => unreachable!(),
                };
                if rows == 0 {
                    continue; // campaign touched nothing: the shard is honest
                }
                let len = labels.len();
                shards.insert(
                    client,
                    PoisonedShard {
                        data: Dataset::new(features, labels, classes),
                        indices: (0..len).collect(),
                        rows,
                        kind,
                    },
                );
            }
        }
        let trigger_eval = (plan.backdoor_fraction > 0.0).then(|| {
            let n = self.test.len().clamp(1, 256);
            // Plan-seeded stream: independent of every engine stream.
            let mut rng = init::rng(plan.seed ^ 0x5452_4947_4556_414C); // "TRIGEVAL"
            trigger.attack_eval_set(&self.test, n, &mut rng)
        });
        let flip_eval = (plan.label_flip_fraction > 0.0)
            .then(|| {
                let rows: Vec<usize> = (0..self.test.len())
                    .filter(|&i| self.test.labels()[i] == plan.flip_from)
                    .collect();
                if rows.is_empty() {
                    return None;
                }
                let batch = self.test.batch(&rows);
                let labels = vec![plan.flip_to; rows.len()];
                Some(Dataset::new(batch.features, labels, classes))
            })
            .flatten();
        self.adversary = Some(AdversaryState {
            plan,
            shards,
            trigger,
            trigger_eval,
            flip_eval,
        });
        self
    }

    /// The adversary plan attached via [`Trainer::with_adversary`], if the
    /// plan was not clean.
    pub fn adversary_plan(&self) -> Option<&AdversaryPlan> {
        self.adversary.as_ref().map(|a| &a.plan)
    }

    /// Selects the group-level aggregation rule for Line 14. The default
    /// [`RobustAggRule::Mean`] is the paper's weighted average; robust
    /// rules trade its unbiasedness for Byzantine tolerance.
    ///
    /// # Panics
    /// Panics when combined with `secure_aggregation`: the masking
    /// protocol can only compute linear functions of the updates.
    pub fn with_robust_agg(mut self, rule: RobustAggRule) -> Self {
        assert!(
            rule == RobustAggRule::Mean || !self.config.secure_aggregation,
            "robust aggregation is incompatible with secure aggregation"
        );
        self.robust_agg = rule;
        self
    }

    pub fn config(&self) -> &GroupFelConfig {
        &self.config
    }

    pub fn model(&self) -> &Network {
        &self.model
    }

    /// The materialized client partition.
    ///
    /// # Panics
    /// Panics for virtual populations, which have no row-index partition;
    /// check [`Trainer::virtual_population`] first when the representation
    /// is not known statically.
    pub fn partition(&self) -> &ClientPartition {
        self.data.partition()
    }

    /// The federated training dataset.
    ///
    /// # Panics
    /// Panics for virtual populations, which never materialize a pooled
    /// dataset.
    pub fn train_data(&self) -> &Dataset {
        self.data.train()
    }

    /// The virtual population, when this trainer runs over one.
    pub fn virtual_population(&self) -> Option<&VirtualPopulation> {
        self.data.as_virtual()
    }

    /// The federated data layout (materialized or virtual).
    pub fn fed_data(&self) -> &FedData {
        &self.data
    }

    /// The held-out test dataset.
    pub fn test_data(&self) -> &Dataset {
        &self.test
    }

    /// Number of samples held by a set of clients.
    pub fn group_samples(&self, group: &[usize]) -> usize {
        group.iter().map(|&c| self.data.client_size(c)).sum()
    }

    /// Evaluates parameters on the held-out test set. Uses pooled
    /// evaluation workspaces — bit-identical to [`Network::evaluate`],
    /// allocation-free once the pool is warm.
    pub fn evaluate(&self, params: &[Scalar]) -> gfl_nn::mlp::EvalResult {
        self.model.evaluate_pooled(
            params,
            self.test.features(),
            self.test.labels(),
            &self.eval_pool,
        )
    }

    /// Builds the cost ledger for a strategy (its op mix and train factor).
    pub fn ledger_for(&self, strategy: &dyn LocalUpdate) -> CostLedger {
        let mut model = CostModel::for_task(self.config.task);
        let f = strategy.training_cost_factor();
        model.training.a *= f;
        model.training.b *= f;
        CostLedger::new(model, strategy.group_ops())
    }

    /// Runs Algorithm 1 with the given groups, local strategy, and sampling
    /// strategy. Returns the evaluation trajectory.
    pub fn run<S: LocalUpdate>(
        &self,
        groups: &[Group],
        strategy: &S,
        sampling: SamplingStrategy,
    ) -> RunHistory {
        let covs: Vec<Scalar> = groups
            .iter()
            .map(|g| group_cov(self.data.label_matrix(), g))
            .collect();
        let probs = sampling.probabilities(&covs);
        self.run_with_probabilities(groups, strategy, &probs)
    }

    /// [`Trainer::run`] that also returns the final global model — for
    /// callers that deploy or checkpoint the trained parameters.
    pub fn run_returning_params<S: LocalUpdate>(
        &self,
        groups: &[Group],
        strategy: &S,
        sampling: SamplingStrategy,
    ) -> (RunHistory, Params) {
        let covs: Vec<Scalar> = groups
            .iter()
            .map(|g| group_cov(self.data.label_matrix(), g))
            .collect();
        let probs = sampling.probabilities(&covs);
        let mut rng = init::rng(self.config.seed);
        let mut params = self.model.init_params(&mut rng);
        let mut ledger = self.ledger_for(strategy);
        let mut history = RunHistory::default();
        self.run_resumable(
            groups,
            strategy,
            &probs,
            &mut params,
            &mut ledger,
            &mut history,
            0,
            self.config.global_rounds,
        );
        (history, params)
    }

    /// [`Trainer::run`] with an explicit probability vector (Line 4's `p`),
    /// for experiments that construct `p` directly.
    pub fn run_with_probabilities<S: LocalUpdate>(
        &self,
        groups: &[Group],
        strategy: &S,
        probs: &[Scalar],
    ) -> RunHistory {
        let mut rng = init::rng(self.config.seed);
        let mut params = self.model.init_params(&mut rng);
        let mut ledger = self.ledger_for(strategy);
        let mut history = RunHistory::default();
        self.run_resumable(
            groups,
            strategy,
            probs,
            &mut params,
            &mut ledger,
            &mut history,
            0,
            self.config.global_rounds,
        );
        history
    }

    /// Resumable core of Algorithm 1: runs `rounds` global rounds starting
    /// at round index `start_round`, mutating `params`, `ledger`, and
    /// `history` in place. Enables warm-started sessions — in particular
    /// the §6.1 *regrouping* extension, where the caller re-forms groups
    /// every few rounds and resumes training on the same model.
    #[allow(clippy::too_many_arguments)]
    pub fn run_resumable<S: LocalUpdate>(
        &self,
        groups: &[Group],
        strategy: &S,
        probs: &[Scalar],
        params: &mut Params,
        ledger: &mut CostLedger,
        history: &mut RunHistory,
        start_round: usize,
        rounds: usize,
    ) {
        assert_eq!(groups.len(), probs.len(), "one probability per group");
        assert!(!groups.is_empty(), "need at least one group");
        history.reserve_rounds(rounds.div_ceil(self.config.eval_every) + 1);
        for t in start_round..start_round + rounds {
            let last = t + 1 == start_round + rounds;
            let report = self.round_once(t, groups, strategy, probs, params, ledger, history, last);
            if report.over_budget {
                break;
            }
        }
    }

    /// One global round of Algorithm 1 (Lines 6–15): sample, train the
    /// sampled groups, degrade gracefully, aggregate, charge costs, and
    /// evaluate on the cadence. Shared by the static partition loop
    /// ([`Trainer::run_resumable`]) and the self-healing loop, which
    /// passes the *effective* (churn-filtered) groups of the round.
    #[allow(clippy::too_many_arguments)]
    fn round_once<S: LocalUpdate>(
        &self,
        t: usize,
        groups: &[Group],
        strategy: &S,
        probs: &[Scalar],
        params: &mut Params,
        ledger: &mut CostLedger,
        history: &mut RunHistory,
        last: bool,
    ) -> RoundReport {
        assert_eq!(groups.len(), probs.len(), "one probability per group");
        let cfg = &self.config;
        let total_samples = self.data.total_samples();
        let s = cfg.sampled_groups.clamp(1, groups.len());
        // Observation is read-only: timestamps and counter snapshots are
        // taken around the simulation sections but never feed back into
        // them, keeping traced runs bit-identical to untraced ones.
        let obs = self.obs.as_deref();
        let round_start = obs.map(|o| o.now_ns());
        let pool_before = obs.map(|_| gfl_parallel::stats::snapshot());
        let allocs_before = obs.map(|_| gfl_obs::alloc::current_allocs());
        // Byte accounting is charged unconditionally (it is a deterministic
        // function of the sampled groups, never of timing); the snapshot
        // lets the round record report per-round deltas.
        let bytes_before = (ledger.client_edge_bytes(), ledger.edge_cloud_bytes());
        {
            let lr = cfg.lr.at(t);
            // Sampling randomness is a pure function of (seed, t) so that a
            // checkpointed-and-resumed session draws exactly the same
            // groups as an uninterrupted one.
            let mut rng = init::rng(cfg.seed ^ (t as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            let sampled = sample_without_replacement(&mut rng, probs, s);

            // Edge outages: a dark edge server takes all of its sampled
            // groups offline for this round. Empty groups (possible
            // transiently under churn, before the next heal pass) sit out.
            let mut round_events: Vec<FaultEvent> = Vec::new();
            let mut quorum_missed: Vec<usize> = Vec::new();
            let active: Vec<usize> = sampled
                .iter()
                .copied()
                .filter(|&gi| !groups[gi].is_empty())
                .filter(|&gi| match &self.faults {
                    Some(fs) => {
                        let edge = fs.edge_of_client[groups[gi][0]];
                        let down = fs.injector.edge_down(edge, t);
                        if down {
                            round_events.push(FaultEvent::EdgeOutage {
                                round: t,
                                edge,
                                group: gi,
                            });
                        }
                        !down
                    }
                    None => true,
                })
                .collect();

            // Lines 7–14: every (group × client) pair of this round trains
            // on one shared work-stealing queue, client-granular.
            let group_refs: Vec<(usize, &[usize])> = active
                .iter()
                .map(|&gi| (gi, groups[gi].as_slice()))
                .collect();
            let outcomes = self.train_groups(params, &group_refs, strategy, t, lr);

            let train_end = obs.map(|o| {
                let end = o.now_ns();
                o.record_span_at(
                    SpanKind::Train,
                    round_start.unwrap(),
                    end,
                    SpanAttrs::round(t),
                );
                end
            });
            let mut comm_ns = 0u64;
            let mut comm_bytes = 0u64;

            // Charge Eq. 5 for every group that attempted the round. One
            // pooled size buffer serves every group (and Line 15 below).
            let mut sizes = self.member_pool.take();
            let comm = self.comm_model();
            let client_bytes = comm.client_bytes_per_round(
                params.len(),
                cfg.group_rounds,
                strategy.upload_payload_factor(),
            );
            for o in &outcomes {
                sizes.clear();
                sizes.extend(o.members.iter().map(|&c| self.data.client_size(c)));
                ledger.charge_group(&sizes, cfg.group_rounds, cfg.local_rounds);
                // Every member that attempted the round moved its downloads
                // and uploads on the client↔edge link, whether or not the
                // group's result later survives the cloud-side gates.
                ledger.charge_client_edge_bytes(o.members.len() as u64 * client_bytes);
            }
            // Measured defense-filter work (FLAME-style cosine clustering)
            // lands in the ledger alongside the emulated group ops, so a
            // real defense shows up in the emulated round time.
            let (defense_sims, defense_norms) = outcomes.iter().fold((0u64, 0u64), |acc, o| {
                (
                    acc.0 + o.defense.similarity_evals,
                    acc.1 + o.defense.norm_passes,
                )
            });
            if defense_sims > 0 || defense_norms > 0 {
                ledger.charge_defense(defense_sims, defense_norms);
            }
            ledger.end_round();

            // Graceful degradation: the survivor quorum, the non-finite
            // gate, and edge→cloud upload retries decide which group
            // models reach Line 15. Clean runs pass every outcome through.
            let mut included: Vec<&GroupOutcome> = Vec::with_capacity(outcomes.len());
            let mut round_attacks: Vec<AttackEvent> = Vec::new();
            for o in &outcomes {
                round_events.extend(o.events.iter().cloned());
                round_attacks.extend(o.attacks.iter().cloned());
                // Edge↔cloud bytes for this group's upload: first-try
                // uploads move one payload; retried uploads move one per
                // attempt (charged in the retry branch below, delivered or
                // not — failed attempts still put bytes on the wire).
                let mut upload_charged = false;
                if let Some(fs) = &self.faults {
                    let required = (fs.policy.quorum_fraction
                        * (cfg.group_rounds * o.samples) as f64)
                        .ceil() as usize;
                    if o.upload_samples < required {
                        round_events.push(FaultEvent::GroupSkipped {
                            round: t,
                            group: o.group,
                            survivors: o.upload_samples,
                            required,
                        });
                        quorum_missed.push(o.group);
                        continue;
                    }
                    if fs.policy.reject_non_finite && !gfl_defense::is_update_finite(&o.params) {
                        round_events.push(FaultEvent::CorruptGroupRejected {
                            round: t,
                            group: o.group,
                        });
                        continue;
                    }
                    let failures = fs
                        .injector
                        .upload_failures(t, o.group, fs.policy.max_retries);
                    if failures > 0 {
                        let retry_start = obs.map(|ob| ob.now_ns());
                        let payload = fs.comm.group_cloud_bytes(params.len());
                        let retry = fs.comm.upload_with_retries(
                            payload,
                            failures,
                            fs.policy.max_retries,
                            fs.policy.backoff_base_s,
                            fs.policy.max_backoff_s,
                        );
                        round_events.push(FaultEvent::UploadRetry {
                            round: t,
                            group: o.group,
                            attempts: retry.attempts,
                            extra_seconds: retry.seconds,
                            extra_bytes: retry.bytes,
                        });
                        ledger.charge_edge_cloud_bytes(retry.bytes);
                        upload_charged = true;
                        comm_bytes += retry.bytes;
                        let delivered = retry.delivered;
                        if let Some(ob) = obs {
                            let start = retry_start.unwrap();
                            let end = ob.now_ns();
                            comm_ns += end.saturating_sub(start);
                            ob.record_span_at(
                                SpanKind::UploadRetry,
                                start,
                                end,
                                SpanAttrs::group(t, o.group).with_bytes(retry.bytes),
                            );
                        }
                        if !delivered {
                            round_events.push(FaultEvent::UploadLost {
                                round: t,
                                group: o.group,
                            });
                            continue;
                        }
                    }
                }
                if !upload_charged {
                    ledger.charge_edge_cloud_bytes(comm.group_cloud_bytes(params.len()));
                }
                included.push(o);
            }

            // Line 15: global aggregation — held (`x_{t+1} = x_t`, params
            // stay finite) when no surviving update reached the cloud.
            if included.iter().all(|o| o.uploads == 0) {
                round_events.push(FaultEvent::RoundHeld { round: t });
            } else {
                sizes.clear();
                sizes.extend(included.iter().map(|o| o.samples));
                let mut sampled_probs = self.param_pool.take();
                sampled_probs.extend(included.iter().map(|o| probs[o.group]));
                let mut weights = self.param_pool.take();
                aggregation_weights_into(
                    cfg.weighting,
                    &sizes,
                    &sampled_probs,
                    total_samples,
                    &mut weights,
                );
                // The exact fill-then-axpy loop of `ops::weighted_sum_into`,
                // inlined over `included` so no view vector is built.
                params.fill(0.0);
                for (o, &w) in included.iter().zip(weights.iter()) {
                    ops::axpy(w, &o.params, params);
                }
                self.param_pool.put(sampled_probs);
                self.param_pool.put(weights);
            }
            self.member_pool.put(sizes);

            let participants: Vec<usize> = included
                .iter()
                .flat_map(|o| o.members.iter().copied())
                .collect();
            strategy.end_global_round(&participants);

            // Aggregate phase = charge + degradation + Line 15, minus the
            // upload-retry (comm) time carved out above, so the four phase
            // durations stay disjoint.
            let agg_end = obs.map(|ob| {
                let end = ob.now_ns();
                let start = train_end.unwrap();
                let wall = end.saturating_sub(start);
                ob.record_span_at(
                    SpanKind::Aggregate,
                    start,
                    start + wall.saturating_sub(comm_ns),
                    SpanAttrs::round(t),
                );
                if comm_ns > 0 {
                    ob.record_span_at(
                        SpanKind::Comm,
                        start,
                        start + comm_ns,
                        SpanAttrs::round(t).with_bytes(comm_bytes),
                    );
                }
                end
            });

            let train_loss = outcomes.iter().map(|o| o.train_loss).sum::<Scalar>()
                / outcomes.len().max(1) as Scalar;

            let fault_events = round_events.len() as u64;
            history.record_faults(round_events);
            let attack_summary = summarize_attacks(&round_attacks);
            history.record_attacks(round_attacks);

            let over_budget = cfg.cost_budget.is_some_and(|b| ledger.total() >= b);
            let mut eval_ns = 0u64;
            let mut asr: Option<AsrRecord> = None;
            if t.is_multiple_of(cfg.eval_every) || last || over_budget {
                let eval_start = obs.map(|ob| ob.now_ns());
                let eval = self.evaluate(params);
                // Attack-success rates, on the same cadence as accuracy:
                // both eval sets carry the attacker's label, so plain
                // accuracy on them *is* the success rate.
                if let Some(adv) = &self.adversary {
                    let rate = |d: &Dataset| {
                        self.model
                            .evaluate_pooled(params, d.features(), d.labels(), &self.eval_pool)
                            .accuracy
                    };
                    let r = AsrRecord {
                        round: t,
                        trigger_asr: adv.trigger_eval.as_ref().map(&rate),
                        flip_asr: adv.flip_eval.as_ref().map(&rate),
                    };
                    history.record_asr(r);
                    asr = Some(r);
                }
                if let Some(ob) = obs {
                    let start = eval_start.unwrap();
                    let end = ob.now_ns();
                    eval_ns = end.saturating_sub(start);
                    ob.record_span_at(SpanKind::Eval, start, end, SpanAttrs::round(t));
                }
                history.push(RoundRecord {
                    round: t,
                    cost: ledger.total(),
                    accuracy: eval.accuracy,
                    loss: eval.loss,
                    train_loss,
                });
            }

            if let Some(ob) = obs {
                let start = round_start.unwrap();
                let end = ob.now_ns();
                ob.record_span_at(SpanKind::Round, start, end, SpanAttrs::round(t));
                let train_ns = train_end.unwrap().saturating_sub(start);
                let agg_wall = agg_end.unwrap().saturating_sub(train_end.unwrap());
                let pool = gfl_parallel::stats::snapshot().since(pool_before.unwrap());
                let allocs =
                    gfl_obs::alloc::current_allocs().saturating_sub(allocs_before.unwrap());
                let clients_trained: u64 = outcomes
                    .iter()
                    .map(|o| (o.members.len() * cfg.group_rounds) as u64)
                    .sum();
                let ce_bytes = ledger.client_edge_bytes() - bytes_before.0;
                let ec_bytes = ledger.edge_cloud_bytes() - bytes_before.1;
                ob.record_round(RoundMetrics {
                    round: t as u64,
                    wall_ns: end.saturating_sub(start),
                    train_ns,
                    aggregate_ns: agg_wall.saturating_sub(comm_ns),
                    comm_ns,
                    eval_ns,
                    groups_trained: outcomes.len() as u64,
                    clients_trained,
                    fault_events,
                    cost_total: ledger.total(),
                    pool_regions: pool.regions,
                    pool_claims: pool.claims,
                    pool_steals: pool.steals,
                    pool_utilization: pool.utilization(),
                    allocs,
                    client_edge_bytes: Some(ce_bytes),
                    edge_cloud_bytes: Some(ec_bytes),
                });
                let m = ob.metrics();
                m.counter("rounds.total").inc();
                m.counter("events.faults").add(fault_events);
                m.counter("clients.trained").add(clients_trained);
                m.counter("comm.bytes.client_edge").add(ce_bytes);
                m.counter("comm.bytes.edge_cloud").add(ec_bytes);
                m.gauge("cost.total").set(ledger.total());
                m.gauge("pool.utilization").set(pool.utilization());
                // Attack/defense telemetry only exists on runs that opted
                // in, so clean traces are byte-identical to pre-adversary
                // ones.
                if self.adversary.is_some() {
                    m.counter("attacks.injected")
                        .add(attack_summary.injected() as u64);
                    m.counter("attacks.filtered.flame")
                        .add(attack_summary.filtered_flame as u64);
                    m.counter("attacks.filtered.non_finite")
                        .add(attack_summary.filtered_non_finite as u64);
                    if let Some(r) = asr {
                        if let Some(v) = r.trigger_asr {
                            m.gauge("asr.trigger").set(v as f64);
                        }
                        if let Some(v) = r.flip_asr {
                            m.gauge("asr.flip").set(v as f64);
                        }
                    }
                }
                if defense_sims > 0 || defense_norms > 0 {
                    m.counter("defense.similarity_evals").add(defense_sims);
                    m.counter("defense.norm_passes").add(defense_norms);
                }
                let ms = |ns: u64| ns as f64 / 1e6;
                let buckets = &gfl_obs::metrics::PHASE_MS_BUCKETS;
                m.histogram("round.train_ms", buckets).observe(ms(train_ns));
                m.histogram("round.aggregate_ms", buckets)
                    .observe(ms(agg_wall.saturating_sub(comm_ns)));
                m.histogram("round.comm_ms", buckets).observe(ms(comm_ns));
                m.histogram("round.eval_ms", buckets).observe(ms(eval_ns));
            }

            // Hand the round's parameter and member buffers back to the
            // pools so the next round's groups start from warm capacity.
            for o in outcomes {
                self.param_pool.put(o.params);
                self.member_pool.put(o.members);
            }

            RoundReport {
                over_budget,
                sampled,
                quorum_missed,
            }
        }
    }

    /// Runs Algorithm 1 under **online membership**: forms the initial
    /// partition over the clients present at round 0, then every round
    /// applies the churn plan (departures, arrivals, flaps), lets the
    /// group-health monitor heal the partition per the configured
    /// [`RegroupPolicy`], and trains on whoever is available. Model state
    /// carries across regroups; every membership transition lands in the
    /// history's regroup log.
    ///
    /// Without [`Trainer::with_churn`] this still runs — a churn-free
    /// self-healing session that only reacts to fault-driven degradation —
    /// and with a clean plan it is bit-identical to [`Trainer::run`] on
    /// [`form_groups_per_edge`] groups.
    pub fn run_self_healing<S: LocalUpdate>(
        &self,
        algo: &dyn GroupingAlgorithm,
        topology: &Topology,
        strategy: &S,
        sampling: SamplingStrategy,
    ) -> Result<(RunHistory, Params, MembershipState), PartitionError> {
        let policy = self
            .churn
            .as_ref()
            .map_or_else(RegroupPolicy::default, |c| c.policy.clone());
        let plan = self.churn.as_ref().map(|c| &c.plan);
        let mut membership = MembershipState::form(
            algo,
            topology,
            self.data.label_matrix(),
            plan,
            policy,
            self.config.seed,
            sampling,
            0,
        )?;
        let mut rng = init::rng(self.config.seed);
        let mut params = self.model.init_params(&mut rng);
        let mut ledger = self.ledger_for(strategy);
        let mut history = RunHistory::default();
        self.run_self_healing_resumable(
            algo,
            topology,
            strategy,
            sampling,
            &mut membership,
            &mut params,
            &mut ledger,
            &mut history,
            0,
            self.config.global_rounds,
        )?;
        Ok((history, params, membership))
    }

    /// Resumable core of the self-healing loop: runs `rounds` global
    /// rounds from `start_round`, mutating the membership state, model,
    /// ledger, and history in place. Checkpointing all five reproduces
    /// the uninterrupted trajectory bit-for-bit — membership transitions
    /// are pure functions of `(plan, round)` and repair is deterministic,
    /// so a resumed session replays the same regroups and draws.
    #[allow(clippy::too_many_arguments)]
    pub fn run_self_healing_resumable<S: LocalUpdate>(
        &self,
        algo: &dyn GroupingAlgorithm,
        topology: &Topology,
        strategy: &S,
        sampling: SamplingStrategy,
        membership: &mut MembershipState,
        params: &mut Params,
        ledger: &mut CostLedger,
        history: &mut RunHistory,
        start_round: usize,
        rounds: usize,
    ) -> Result<(), PartitionError> {
        let labels = self.data.label_matrix();
        let plan = self.churn.as_ref().map(|c| &c.plan);
        let obs = self.obs.as_deref();
        history.reserve_rounds(rounds.div_ceil(self.config.eval_every) + 1);
        for t in start_round..start_round + rounds {
            let regroup_start = obs.map(|ob| ob.now_ns());
            let mut events = Vec::new();
            if let Some(plan) = plan {
                events.extend(membership.apply_churn(plan, t, labels, topology));
            }
            events.extend(membership.heal(
                t,
                labels,
                algo,
                topology,
                self.config.seed,
                sampling,
            )?);
            if let Some(ob) = obs {
                ob.record_span(
                    SpanKind::Regroup,
                    regroup_start.unwrap(),
                    SpanAttrs::round(t),
                );
                ob.metrics()
                    .counter("events.regroups")
                    .add(events.len() as u64);
            }
            history.record_regroups(events);
            // CoVs shift with membership, so a healing policy refreshes
            // sampling probabilities every round; a frozen policy keeps
            // the formation-time values.
            if membership.policy.enabled {
                membership.refresh_probs(labels, sampling);
            }
            // Flapping clients sit out the round without leaving their
            // group; the round trains each group's available members.
            let effective: Vec<Group> = membership
                .groups
                .iter()
                .map(|g| {
                    g.iter()
                        .copied()
                        .filter(|&c| plan.is_none_or(|p| p.available(c, t)))
                        .collect()
                })
                .collect();
            if effective.iter().all(|g: &Group| g.is_empty()) {
                // Nobody is reachable: hold the round outright.
                let held_start = obs.map(|ob| ob.now_ns());
                history.record_fault(FaultEvent::RoundHeld { round: t });
                ledger.end_round();
                let last = t + 1 == start_round + rounds;
                let mut eval_ns = 0u64;
                if t.is_multiple_of(self.config.eval_every) || last {
                    let eval_start = obs.map(|ob| ob.now_ns());
                    let eval = self.evaluate(params);
                    if let Some(ob) = obs {
                        let start = eval_start.unwrap();
                        let end = ob.now_ns();
                        eval_ns = end.saturating_sub(start);
                        ob.record_span_at(SpanKind::Eval, start, end, SpanAttrs::round(t));
                    }
                    history.push(RoundRecord {
                        round: t,
                        cost: ledger.total(),
                        accuracy: eval.accuracy,
                        loss: eval.loss,
                        train_loss: 0.0,
                    });
                }
                if let Some(ob) = obs {
                    let start = held_start.unwrap();
                    let end = ob.now_ns();
                    ob.record_span_at(SpanKind::Round, start, end, SpanAttrs::round(t));
                    let mut m = RoundMetrics::empty(t);
                    m.wall_ns = end.saturating_sub(start);
                    m.eval_ns = eval_ns;
                    m.fault_events = 1;
                    m.cost_total = ledger.total();
                    ob.record_round(m);
                    ob.metrics().counter("rounds.total").inc();
                    ob.metrics().counter("events.faults").inc();
                }
                continue;
            }
            let probs = membership.probs.clone();
            let last = t + 1 == start_round + rounds;
            let report = self.round_once(
                t, &effective, strategy, &probs, params, ledger, history, last,
            );
            membership.observe_round(&report.sampled, &report.quorum_missed);
            if report.over_budget {
                break;
            }
        }
        Ok(())
    }

    /// Trains one group for `K` group rounds starting from `global` (Lines
    /// 8–14). Public so baseline runners (FedCLAR) can reuse the exact same
    /// group mechanics.
    pub fn train_group<S: LocalUpdate>(
        &self,
        global: &[Scalar],
        group: &[usize],
        strategy: &S,
        t: usize,
        lr: Scalar,
    ) -> GroupOutcomePublic {
        let o = self.train_group_impl(global, group, strategy, t, lr, 0);
        GroupOutcomePublic {
            params: o.params,
            samples: o.samples,
            train_loss: o.train_loss,
        }
    }

    fn train_group_impl<S: LocalUpdate>(
        &self,
        global: &[Scalar],
        group: &[usize],
        strategy: &S,
        t: usize,
        lr: Scalar,
        gi: usize,
    ) -> GroupOutcome {
        self.train_groups(global, &[(gi, group)], strategy, t, lr)
            .pop()
            .expect("one group in, one outcome out")
    }

    /// Straggler deadline for a group: `deadline_factor ×` the slowest
    /// *nominal* client's wall-clock estimate (compute per Eq. 5's training
    /// cost, plus both client↔edge transfers). Returns `(deadline_s,
    /// transfer_s)`.
    pub(crate) fn group_deadline(&self, group: &[usize], param_len: usize) -> Option<(f64, f64)> {
        let fs = self.faults.as_ref()?;
        if fs.policy.deadline_factor <= 0.0 {
            return None;
        }
        let transfer = 2.0
            * fs.comm
                .client_edge
                .transfer_time(CommModel::model_bytes(param_len));
        let slowest = group
            .iter()
            .map(|&c| {
                fs.cost.training(self.data.client_size(c)) * self.config.local_rounds as f64
                    + transfer
            })
            .fold(0.0f64, f64::max);
        Some((fs.policy.deadline_factor * slowest, transfer))
    }

    /// Trains a batch of groups for `K` group rounds each (Lines 8–14),
    /// flattening every group round's (group × client) pairs into one
    /// work-stealing queue. Client-granular scheduling keeps all workers
    /// busy even when group sizes are skewed; each unit writes only its own
    /// [`Slot`], and slots are reduced sequentially in member order, so the
    /// result is bit-identical to the sequential engine for any thread
    /// count.
    fn train_groups<S: LocalUpdate>(
        &self,
        global: &[Scalar],
        groups: &[(usize, &[usize])],
        strategy: &S,
        t: usize,
        lr: Scalar,
    ) -> Vec<GroupOutcome> {
        self.train_groups_with_cuts(global, groups, strategy, t, lr, None)
    }

    /// [`Trainer::train_groups`] with optional precomputed time-domain
    /// straggler cuts (one [`GroupCuts`] per group, aligned with `groups`).
    /// When cuts are supplied the lockstep in-unit deadline estimate is
    /// disabled — the semi-async scheduler has already decided, in emulated
    /// time, exactly which reports missed each group round's close.
    pub(crate) fn train_groups_with_cuts<S: LocalUpdate>(
        &self,
        global: &[Scalar],
        groups: &[(usize, &[usize])],
        strategy: &S,
        t: usize,
        lr: Scalar,
        cuts: Option<&[GroupCuts]>,
    ) -> Vec<GroupOutcome> {
        if let Some(c) = cuts {
            assert_eq!(c.len(), groups.len(), "one cut set per group");
        }
        let cfg = &self.config;
        let mut ctxs: Vec<GroupCtx<'_>> = groups
            .iter()
            .map(|&(gi, group)| GroupCtx {
                gi,
                group,
                // Pooled: the group model and every slot buffer come back
                // with warm parameter-length capacity after round one.
                group_params: {
                    let mut gp = self.param_pool.take();
                    gp.extend_from_slice(global);
                    gp
                },
                slots: {
                    let mut slots = self.slot_pool.take();
                    slots.extend(group.iter().map(|_| Slot {
                        buf: self.param_pool.take(),
                        live: false,
                        event: None,
                        attack: None,
                        loss: None,
                    }));
                    slots
                },
                deadline: if cuts.is_some() {
                    None
                } else {
                    self.group_deadline(group, global.len())
                },
                loss_acc: 0.0,
                loss_n: 0,
                uploads: 0,
                upload_samples: 0,
                events: Vec::new(),
                attacks: Vec::new(),
                defense: DefenseCost::default(),
                n_g: self.group_samples(group).max(1),
            })
            .collect();
        let total_units: usize = groups.iter().map(|&(_, g)| g.len()).sum();
        let obs = self.obs.as_deref();

        for k in 0..cfg.group_rounds {
            let k_start = obs.map(|ob| ob.now_ns());
            // Flatten this group round into per-client units. Splitting a
            // ctx into its fields lets each unit hold the group model
            // immutably alongside a mutable borrow of its own slot.
            let mut units: Vec<Unit<'_>> = Vec::with_capacity(total_units);
            for (ci, ctx) in ctxs.iter_mut().enumerate() {
                let group_cuts = cuts.map(|c| &c[ci]);
                let GroupCtx {
                    gi,
                    group,
                    group_params,
                    slots,
                    deadline,
                    ..
                } = ctx;
                let start: &[Scalar] = group_params.as_slice();
                for (mi, (slot, &client)) in slots.iter_mut().zip(group.iter()).enumerate() {
                    units.push(Unit {
                        gi: *gi,
                        client,
                        start,
                        deadline: *deadline,
                        timed_cut: group_cuts.and_then(|g| g.cut_for(k, mi)),
                        slot,
                    });
                }
            }
            gfl_parallel::par_for_each_init(
                &mut units,
                || self.scratch.acquire(&self.model),
                |scratch, _i, unit| {
                    // Client-step spans are timed around the unit from the
                    // worker thread; the mutex push happens after the unit's
                    // simulation work is complete and touches no shared
                    // simulation state.
                    let step_start = obs.map(|ob| ob.now_ns());
                    self.run_unit(t, k, lr, global, strategy, unit, scratch.get_mut());
                    if let Some(ob) = obs {
                        ob.record_span(
                            SpanKind::ClientStep,
                            step_start.unwrap(),
                            SpanAttrs::client_step(t, k, unit.gi, unit.client),
                        );
                    }
                },
            );
            drop(units);

            // Sequential reduction, group by group, slots in member order —
            // the exact event/loss/aggregation order of the old per-group
            // loop.
            for ctx in ctxs.iter_mut() {
                for slot in ctx.slots.iter_mut() {
                    if let Some(ev) = slot.event.take() {
                        ctx.events.push(ev);
                    }
                    if let Some(at) = slot.attack.take() {
                        ctx.attacks.push(at);
                    }
                    if let Some(loss) = slot.loss.take() {
                        ctx.loss_acc += loss;
                        ctx.loss_n += 1;
                    }
                }
                // The FLAME-style filter runs before the survivor tally so
                // rejected updates neither count as uploads nor reach the
                // group aggregate; accepted updates are clipped in place.
                if self.robust_agg == RobustAggRule::FlameFilter {
                    self.flame_filter(ctx, t, k);
                }
                // Line 14: group aggregation, weighted by n_i over this
                // round's survivors.
                let n_surv: usize = ctx
                    .group
                    .iter()
                    .zip(ctx.slots.iter())
                    .filter(|(_, s)| s.live)
                    .map(|(&c, _)| self.data.client_size(c))
                    .sum();
                ctx.uploads += ctx.slots.iter().filter(|s| s.live).count();
                ctx.upload_samples += n_surv;
                if n_surv == 0 {
                    continue; // every client dropped: group model unchanged
                }
                if cfg.secure_aggregation {
                    let weights: Vec<Scalar> = ctx
                        .group
                        .iter()
                        .zip(ctx.slots.iter())
                        .filter(|(_, s)| s.live)
                        .map(|(&c, _)| self.data.client_size(c) as Scalar / n_surv as Scalar)
                        .collect();
                    self.secure_group_aggregate(
                        ctx.group,
                        &ctx.slots,
                        &weights,
                        &mut ctx.group_params,
                        t,
                        k,
                    );
                } else if !matches!(
                    self.robust_agg,
                    RobustAggRule::Mean | RobustAggRule::FlameFilter
                ) && ctx.slots.iter().filter(|s| s.live).count() >= 3
                {
                    let survivors: Vec<Vec<Scalar>> = ctx
                        .slots
                        .iter()
                        .filter(|s| s.live)
                        .map(|s| s.buf.clone())
                        .collect();
                    ctx.group_params = robust_aggregate(self.robust_agg, &survivors);
                } else {
                    // The exact fill-then-axpy loop of
                    // `ops::weighted_sum_into` over the live slots in
                    // member order — bit-identical, without building the
                    // per-(group, k) weight and view vectors.
                    ctx.group_params.fill(0.0);
                    for (&c, s) in ctx
                        .group
                        .iter()
                        .zip(ctx.slots.iter())
                        .filter(|(_, s)| s.live)
                    {
                        let w = self.data.client_size(c) as Scalar / n_surv as Scalar;
                        ops::axpy(w, &s.buf, &mut ctx.group_params);
                    }
                }
            }

            if let Some(ob) = obs {
                ob.record_span(
                    SpanKind::GroupRound,
                    k_start.unwrap(),
                    SpanAttrs::group_round(t, k),
                );
            }
        }

        ctxs.into_iter()
            .map(|ctx| {
                // Slot buffers and shells go straight back to the pools;
                // the group model travels on inside the outcome and is
                // recycled by `round_once` once aggregation is done.
                let mut slots = ctx.slots;
                for s in slots.drain(..) {
                    self.param_pool.put(s.buf);
                }
                self.slot_pool.put(slots);
                let mut members = self.member_pool.take();
                members.extend_from_slice(ctx.group);
                GroupOutcome {
                    group: ctx.gi,
                    params: ctx.group_params,
                    samples: ctx.n_g,
                    train_loss: ctx.loss_acc / ctx.loss_n.max(1) as Scalar,
                    members,
                    uploads: ctx.uploads,
                    upload_samples: ctx.upload_samples,
                    events: ctx.events,
                    attacks: ctx.attacks,
                    defense: ctx.defense,
                }
            })
            .collect()
    }

    /// FLAME-style group defense (Line 14 pre-filter): clusters the live
    /// slots' *deltas* by cosine similarity, rejects the suspicious
    /// minority, and clips the accepted deltas to the median norm. Rejected
    /// slots are marked dead — they never reach the survivor tally or the
    /// aggregate — and rejected *adversaries* are logged as
    /// [`AttackEvent::AttackFiltered`]. Honest clients the filter cuts are
    /// collateral damage, not attacks, so they are not logged.
    fn flame_filter(&self, ctx: &mut GroupCtx<'_>, t: usize, k: usize) {
        let live: Vec<usize> = (0..ctx.slots.len())
            .filter(|&i| ctx.slots[i].live)
            .collect();
        if live.len() < 3 {
            return; // too few survivors to cluster: pass everyone through
        }
        let mut deltas: Vec<Vec<Scalar>> = live
            .iter()
            .map(|&i| {
                ctx.slots[i]
                    .buf
                    .iter()
                    .zip(ctx.group_params.iter())
                    .map(|(&w, &s)| w - s)
                    .collect()
            })
            .collect();
        let report =
            gfl_defense::filter_updates(&mut deltas, &gfl_defense::DefenseConfig::default());
        ctx.defense.similarity_evals += report.cost.similarity_evals;
        ctx.defense.norm_passes += report.cost.norm_passes;
        for (pos, delta) in deltas.iter().enumerate() {
            let slot_idx = live[pos];
            if report.rejected.contains(&pos) {
                ctx.slots[slot_idx].live = false;
                let client = ctx.group[slot_idx];
                if self
                    .adversary
                    .as_ref()
                    .is_some_and(|a| a.plan.is_adversary(client))
                {
                    ctx.attacks.push(AttackEvent::AttackFiltered {
                        round: t,
                        group_round: k,
                        group: ctx.gi,
                        client,
                        stage: DefenseStage::FlameFilter,
                    });
                }
            } else {
                // Write the clipped delta back so the weighted-mean path
                // aggregates exactly what the defense admitted.
                for (w, (&d, &s)) in ctx.slots[slot_idx]
                    .buf
                    .iter_mut()
                    .zip(delta.iter().zip(ctx.group_params.iter()))
                {
                    *w = s + d;
                }
            }
        }
    }

    /// One client's local training within one group round (Line 13, plus
    /// the fault gates around it). Writes only `unit.slot`; every decision
    /// is a pure function of `(seed, t, k, client)`, so the outcome does
    /// not depend on which worker thread runs the unit or when.
    #[allow(clippy::too_many_arguments)]
    fn run_unit<S: LocalUpdate>(
        &self,
        t: usize,
        k: usize,
        lr: Scalar,
        global: &[Scalar],
        strategy: &S,
        unit: &mut Unit<'_>,
        scratch: &mut LocalScratch,
    ) {
        let cfg = &self.config;
        let fs = self.faults.as_ref();
        let client = unit.client;
        let slot = &mut *unit.slot;
        slot.live = false;
        slot.event = None;
        slot.attack = None;
        slot.loss = None;
        let client_samples = self.data.client_size(client);
        // Injected faults: crashes vanish mid-round, stragglers past the
        // deadline are cut. Decisions are pure hashes — they never touch
        // `crng`, so the clean path is bit-identical with faults compiled
        // in but disabled.
        if let Some(fs) = fs {
            if fs.injector.crashes(t, k, client) {
                slot.event = Some(FaultEvent::ClientCrash {
                    round: t,
                    group_round: k,
                    group: unit.gi,
                    client,
                });
                return;
            }
        }
        // Semi-async: the scheduler's timing pass already placed this
        // client's report after the group-round close (quorum filled or
        // deadline fired first). Clean clients can be cut here too — with
        // `slowdown = 1.0` — when a partial quorum closes the round early.
        if let Some(slowdown) = unit.timed_cut {
            slot.event = Some(FaultEvent::StragglerCut {
                round: t,
                group_round: k,
                group: unit.gi,
                client,
                slowdown,
            });
            return;
        }
        if let Some(fs) = fs {
            if let Some((deadline_s, transfer)) = unit.deadline {
                let slowdown = fs.injector.slowdown(t, k, client);
                if slowdown > 1.0 {
                    let estimated =
                        fs.cost.training(client_samples) * cfg.local_rounds as f64 * slowdown
                            + transfer;
                    if estimated > deadline_s {
                        slot.event = Some(FaultEvent::StragglerCut {
                            round: t,
                            group_round: k,
                            group: unit.gi,
                            client,
                            slowdown,
                        });
                        return;
                    }
                }
            }
        }
        // Independent, reproducible stream per (seed, t, k, client).
        let mut crng = init::rng(
            cfg.seed
                ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (k as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
                ^ (client as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        // Device churn: the client trains but drops before its upload
        // reaches the edge aggregator.
        let dropped = cfg.dropout_prob > 0.0 && crng.gen::<f64>() < cfg.dropout_prob;
        if dropped {
            return;
        }
        slot.buf.clear();
        slot.buf.extend_from_slice(unit.start);
        // Compromised data poisoners train on a poisoned shard; everyone
        // else trains on their honest rows. Swapping the shard here —
        // inside the client update boundary — means the poison is already
        // baked in *before* any masking or robust aggregation, so attacks
        // survive SecAgg exactly as they would in deployment. Materialized
        // federations use prebuilt shards; virtual ones derive the client's
        // rows on demand into pooled buffers (released below) and apply the
        // campaign to the fresh rows — same picks, same rows, bitwise the
        // shard `with_adversary` would have prebuilt.
        let adv = self.adversary.as_ref();
        let mut owned: Option<(Dataset, Vec<usize>)> = None;
        let mut poisoned: Option<(AttackKind, usize)> = None;
        let (data, indices): (&Dataset, &[usize]) = match &self.data {
            FedData::Materialized { train, partition } => {
                match adv.and_then(|a| a.shards.get(&client)) {
                    Some(s) => {
                        poisoned = Some((s.kind, s.rows));
                        (&s.data, s.indices.as_slice())
                    }
                    None => (train, partition.indices[client].as_slice()),
                }
            }
            FedData::Virtual(pop) => {
                let features = self.shard_pool.take();
                let labels = self.member_pool.take();
                let mut ds = pop.shard_from_parts(client, features, labels);
                let kind = adv.and_then(|a| match a.plan.kind(client) {
                    Some(k @ (AttackKind::Backdoor | AttackKind::LabelFlip)) => Some(k),
                    _ => None,
                });
                if let (Some(a), Some(kind)) = (adv, kind) {
                    let classes = ds.num_classes();
                    let (mut features, mut labels) = ds.into_parts();
                    let picked: Vec<usize> = (0..labels.len())
                        .filter(|&r| a.plan.poisons_row(client, r))
                        .collect();
                    let rows = match kind {
                        AttackKind::Backdoor => {
                            a.trigger.apply(&mut features, &mut labels, &picked);
                            picked.len()
                        }
                        AttackKind::LabelFlip => gfl_data::poison::label_flip(
                            &mut labels,
                            &picked,
                            a.plan.flip_from,
                            a.plan.flip_to,
                        ),
                        AttackKind::ModelPoison => unreachable!(),
                    };
                    if rows > 0 {
                        poisoned = Some((kind, rows));
                    }
                    ds = Dataset::new(features, labels, classes);
                }
                let mut idx = self.member_pool.take();
                idx.extend(0..ds.len());
                owned = Some((ds, idx));
                let (d, i) = owned.as_ref().expect("just set");
                (d, i.as_slice())
            }
        };
        if let Some((kind, rows)) = poisoned {
            slot.attack = Some(match kind {
                AttackKind::Backdoor => AttackEvent::BackdoorInjected {
                    round: t,
                    group_round: k,
                    group: unit.gi,
                    client,
                    rows,
                },
                AttackKind::LabelFlip => AttackEvent::LabelsFlipped {
                    round: t,
                    group_round: k,
                    group: unit.gi,
                    client,
                    rows,
                },
                AttackKind::ModelPoison => unreachable!("model poisoners have no shard"),
            });
        }
        let task = LocalTask {
            client,
            model: &self.model,
            group_start: unit.start,
            global_start: global,
            data,
            indices,
            epochs: cfg.local_rounds,
            batch_size: cfg.batch_size,
            lr,
            round: t,
        };
        let loss = strategy.train(&task, &mut slot.buf, scratch, &mut crng);
        if !indices.is_empty() {
            slot.loss = Some(loss);
        }
        // Model poisoners train honestly, then amplify their uploaded
        // delta (scale and/or sign-flip) — the model-replacement attack.
        // Boosted backdoor clients amplify their poison-trained delta the
        // same way, keeping the BackdoorInjected classification.
        if let Some(a) = adv {
            match a.plan.kind(client) {
                Some(AttackKind::ModelPoison) => {
                    let factor =
                        a.plan.scale_factor as Scalar * if a.plan.sign_flip { -1.0 } else { 1.0 };
                    for (w, &s) in slot.buf.iter_mut().zip(unit.start.iter()) {
                        *w = s + factor * (*w - s);
                    }
                    slot.attack = Some(AttackEvent::UpdatePoisoned {
                        round: t,
                        group_round: k,
                        group: unit.gi,
                        client,
                    });
                }
                Some(AttackKind::Backdoor) if a.plan.backdoor_boost != 1.0 => {
                    let factor = a.plan.backdoor_boost as Scalar;
                    for (w, &s) in slot.buf.iter_mut().zip(unit.start.iter()) {
                        *w = s + factor * (*w - s);
                    }
                }
                _ => {}
            }
        }
        let mut rejected = false;
        if let Some(fs) = fs {
            if fs.injector.corrupts(t, k, client) {
                // The update arrives garbled: all weights NaN.
                for w in slot.buf.iter_mut() {
                    *w = Scalar::NAN;
                }
            }
            if fs.policy.reject_non_finite && !gfl_defense::is_update_finite(&slot.buf) {
                // An adversary whose amplified update overflowed is caught
                // here: the injection becomes an interception.
                if slot.attack.take().is_some() {
                    slot.attack = Some(AttackEvent::AttackFiltered {
                        round: t,
                        group_round: k,
                        group: unit.gi,
                        client,
                        stage: DefenseStage::NonFiniteGate,
                    });
                }
                slot.event = Some(FaultEvent::CorruptRejected {
                    round: t,
                    group_round: k,
                    group: unit.gi,
                    client,
                });
                rejected = true;
            }
        }
        if !rejected {
            slot.live = true;
        }
        // Virtual shards live exactly as long as the unit that trained on
        // them: hand the feature/label/index buffers back for the next
        // sampled client, on every exit path past materialization.
        if let Some((ds, idx)) = owned {
            let (features, labels) = ds.into_parts();
            self.shard_pool.put(features.into_vec());
            self.member_pool.put(labels);
            self.member_pool.put(idx);
        }
    }

    /// Group aggregation through the real pairwise-masking protocol:
    /// every surviving client masks its *weighted* model, the server
    /// unmasks the survivor sum — including mask recovery for clients that
    /// dropped mid-round (`weights` aligns with the surviving members in
    /// group order).
    fn secure_group_aggregate(
        &self,
        group: &[usize],
        slots: &[Slot],
        weights: &[Scalar],
        out: &mut Params,
        t: usize,
        k: usize,
    ) {
        let dim = out.len();
        let members: Vec<u32> = group.iter().map(|&c| c as u32).collect();
        let session_seed =
            self.config.seed.wrapping_mul(0xA24B_AED4_963E_E407) ^ ((t as u64) << 20) ^ k as u64;
        let session = gfl_secagg::SecAggSession::new(members, dim, session_seed);
        let mut survivors = Vec::with_capacity(group.len());
        let mut masked = Vec::with_capacity(group.len());
        let mut w_iter = weights.iter();
        for (&c, slot) in group.iter().zip(slots.iter()) {
            if !slot.live {
                continue;
            }
            let w = *w_iter.next().expect("one weight per survivor");
            let mut scaled = slot.buf.clone();
            ops::scale(w, &mut scaled);
            masked.push(session.mask(c as u32, &scaled).0);
            survivors.push(c as u32);
        }
        let (sum, _) = session.unmask_sum(&survivors, &masked);
        out.copy_from_slice(&sum);
    }
}

/// Public view of a group's training outcome (for baseline runners).
pub struct GroupOutcomePublic {
    /// The trained group model `x^g_{t,K−1}`.
    pub params: Params,
    /// Group data volume `n_g`.
    pub samples: usize,
    /// Mean local loss observed.
    pub train_loss: Scalar,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::{CovGrouping, RandomGrouping};
    use crate::local::FedAvg;
    use gfl_data::{PartitionSpec, SyntheticSpec};

    fn tiny_world(seed: u64) -> (Trainer, Vec<Group>) {
        let data = SyntheticSpec::tiny().generate(600, seed);
        let (train, test) = data.split_holdout(5);
        let part = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.5, seed));
        let topo = Topology::even_split(2, part.sizes());
        let groups = form_groups_per_edge(
            &CovGrouping {
                min_group_size: 2,
                max_cov: 0.8,
            },
            &topo,
            &part.label_matrix,
            seed,
        );
        let model = gfl_nn::zoo::tiny(4, 3);
        let trainer = Trainer::new(GroupFelConfig::tiny(), model, train, part, test);
        (trainer, groups)
    }

    #[test]
    fn run_produces_monotone_cost_history() {
        let (trainer, groups) = tiny_world(1);
        let h = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
        assert!(!h.is_empty());
        let costs: Vec<f64> = h.records().iter().map(|r| r.cost).collect();
        for w in costs.windows(2) {
            assert!(w[1] >= w[0], "cost must be nondecreasing: {costs:?}");
        }
        assert!(costs[0] > 0.0);
    }

    #[test]
    fn training_improves_over_initial_model() {
        let (trainer, groups) = tiny_world(2);
        let mut cfg = GroupFelConfig::tiny();
        cfg.global_rounds = 12;
        cfg.lr = LrSchedule::Constant(0.2);
        let trainer = Trainer::new(
            cfg,
            trainer.model.clone(),
            trainer.train_data().clone(),
            trainer.partition().clone(),
            trainer.test.clone(),
        );
        let h = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
        let first = h.first_record().expect("eval on cadence").accuracy;
        let best = h.best_accuracy();
        assert!(
            best > first + 0.1 || best > 0.8,
            "no learning: first {first}, best {best}"
        );
    }

    #[test]
    fn run_is_deterministic() {
        let (trainer, groups) = tiny_world(3);
        let a = trainer.run(&groups, &FedAvg, SamplingStrategy::SRCov);
        let b = trainer.run(&groups, &FedAvg, SamplingStrategy::SRCov);
        assert_eq!(a.records().len(), b.records().len());
        for (x, y) in a.records().iter().zip(b.records()) {
            assert_eq!(x.accuracy, y.accuracy);
            assert_eq!(x.cost, y.cost);
        }
    }

    #[test]
    fn secure_aggregation_matches_plain_aggregation() {
        let (trainer, groups) = tiny_world(4);
        let plain = trainer.run(&groups, &FedAvg, SamplingStrategy::Random);
        let mut cfg = trainer.config.clone();
        cfg.secure_aggregation = true;
        let secure_trainer = Trainer::new(
            cfg,
            trainer.model.clone(),
            trainer.train_data().clone(),
            trainer.partition().clone(),
            trainer.test.clone(),
        );
        let secure = secure_trainer.run(&groups, &FedAvg, SamplingStrategy::Random);
        // Same trajectory up to f32 mask-cancellation rounding.
        for (p, s) in plain.records().iter().zip(secure.records()) {
            assert!(
                (p.accuracy - s.accuracy).abs() < 0.05,
                "plain {} vs secure {}",
                p.accuracy,
                s.accuracy
            );
        }
    }

    #[test]
    fn cost_budget_stops_training_early() {
        let (trainer, groups) = tiny_world(5);
        let mut cfg = GroupFelConfig::tiny();
        cfg.global_rounds = 50;
        cfg.eval_every = 1;
        cfg.cost_budget = Some(1000.0);
        let trainer = Trainer::new(
            cfg,
            trainer.model.clone(),
            trainer.train_data().clone(),
            trainer.partition().clone(),
            trainer.test.clone(),
        );
        let h = trainer.run(&groups, &FedAvg, SamplingStrategy::Random);
        let last = h.last_record().expect("eval on cadence");
        assert!(last.round < 49, "budget should stop before round 50");
    }

    #[test]
    fn zero_round_configs_are_typed_errors_not_panics() {
        let (trainer, _groups) = tiny_world(8);
        let build = |cfg: GroupFelConfig, model: Network| match Trainer::try_new(
            cfg,
            model,
            trainer.train_data().clone(),
            trainer.partition().clone(),
            trainer.test.clone(),
        ) {
            Err(e) => e,
            Ok(_) => panic!("invalid configuration must be rejected"),
        };

        let mut cfg = GroupFelConfig::tiny();
        cfg.global_rounds = 0;
        assert_eq!(
            build(cfg, trainer.model.clone()),
            ConfigError::ZeroGlobalRounds
        );

        let mut cfg = GroupFelConfig::tiny();
        cfg.group_rounds = 0;
        assert_eq!(
            build(cfg, trainer.model.clone()),
            ConfigError::ZeroGroupRounds
        );

        let mut cfg = GroupFelConfig::tiny();
        cfg.eval_every = 0;
        assert_eq!(
            build(cfg, trainer.model.clone()),
            ConfigError::ZeroEvalCadence
        );

        let err = build(GroupFelConfig::tiny(), gfl_nn::zoo::tiny(9, 3));
        assert!(matches!(
            err,
            ConfigError::DimensionMismatch { model: 9, .. }
        ));
    }

    #[test]
    fn observer_records_rounds_and_phase_spans() {
        let (trainer, groups) = tiny_world(9);
        let obs = gfl_obs::TraceCollector::new();
        let trainer = Trainer::try_new(
            trainer.config.clone(),
            trainer.model.clone(),
            trainer.train_data().clone(),
            trainer.partition().clone(),
            trainer.test.clone(),
        )
        .unwrap()
        .with_observer(std::sync::Arc::clone(&obs));
        let h = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
        let trace = obs.finish(gfl_parallel::default_parallelism());
        let rounds = trainer.config.global_rounds as u64;
        assert_eq!(trace.rounds.len() as u64, rounds);
        let summary = trace.summary.as_ref().unwrap();
        assert_eq!(summary.rounds, rounds);
        assert_eq!(summary.metrics.counter("rounds.total"), Some(rounds));
        // One Round/Train/Aggregate span per round, K GroupRound spans each.
        let per_kind = |k| trace.spans.iter().filter(|s| s.kind == k).count() as u64;
        assert_eq!(per_kind(SpanKind::Round), rounds);
        assert_eq!(per_kind(SpanKind::Train), rounds);
        assert_eq!(per_kind(SpanKind::Aggregate), rounds);
        assert_eq!(
            per_kind(SpanKind::GroupRound),
            rounds * trainer.config.group_rounds as u64
        );
        assert!(per_kind(SpanKind::ClientStep) > 0);
        // Evaluation runs every round under the tiny config's cadence.
        assert_eq!(per_kind(SpanKind::Eval), h.records().len() as u64);
        // The four phase durations never exceed round wall time.
        for r in &trace.rounds {
            assert!(r.train_ns + r.aggregate_ns + r.comm_ns + r.eval_ns <= r.wall_ns);
            assert!(r.clients_trained > 0);
        }
        assert!(
            trace.round_coverage() > 0.5,
            "tiny rounds are mostly phases"
        );
    }

    #[test]
    fn form_groups_per_edge_respects_edge_boundaries() {
        let data = SyntheticSpec::tiny().generate(400, 6);
        let part = ClientPartition::dirichlet(&data, &PartitionSpec::tiny(0.5, 6));
        let topo = Topology::even_split(3, part.sizes());
        let groups = form_groups_per_edge(
            &RandomGrouping { group_size: 3 },
            &topo,
            &part.label_matrix,
            9,
        );
        // Every group's members must live on a single edge server.
        for g in &groups {
            let edges: std::collections::HashSet<usize> = g
                .iter()
                .map(|&c| (0..3).find(|&j| topo.clients_of(j).contains(&c)).unwrap())
                .collect();
            assert_eq!(edges.len(), 1, "group {g:?} spans edges {edges:?}");
        }
        // And the union of groups is all clients.
        let total: usize = groups.iter().map(Group::len).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn clean_self_healing_run_matches_static_run_bit_for_bit() {
        // With no churn plan, the self-healing loop must reproduce the
        // static engine exactly: same formation, same draws, same model.
        let (trainer, _) = tiny_world(11);
        let algo = CovGrouping {
            min_group_size: 2,
            max_cov: 0.8,
        };
        let topo = Topology::even_split(2, trainer.partition().sizes());
        // The self-healing loop forms its partition with the config seed.
        let groups = form_groups_per_edge(
            &algo,
            &topo,
            &trainer.partition().label_matrix,
            trainer.config.seed,
        );
        let (h_static, p_static) =
            trainer.run_returning_params(&groups, &FedAvg, SamplingStrategy::ESRCov);
        let (h_heal, p_heal, membership) = trainer
            .run_self_healing(&algo, &topo, &FedAvg, SamplingStrategy::ESRCov)
            .unwrap();
        assert_eq!(membership.groups, groups);
        assert_eq!(p_static, p_heal);
        assert_eq!(h_static, h_heal);
        assert!(h_heal.regroup_events().is_empty());
    }

    #[test]
    fn robust_aggregation_rules_complete_and_stay_finite() {
        let (trainer, groups) = tiny_world(12);
        for rule in [
            RobustAggRule::CoordinateMedian,
            RobustAggRule::TrimmedMean { trim: 1 },
            RobustAggRule::Krum { byzantine: 1 },
            RobustAggRule::MultiKrum {
                byzantine: 1,
                select: 2,
            },
        ] {
            let t = Trainer::new(
                trainer.config.clone(),
                trainer.model.clone(),
                trainer.train_data().clone(),
                trainer.partition().clone(),
                trainer.test.clone(),
            )
            .with_robust_agg(rule);
            let (h, p) = t.run_returning_params(&groups, &FedAvg, SamplingStrategy::Random);
            assert!(!h.is_empty(), "{rule:?} produced no records");
            assert!(
                p.iter().all(|w| w.is_finite()),
                "{rule:?} produced non-finite weights"
            );
        }
    }

    #[test]
    fn robust_aggregation_clamps_small_groups() {
        // Breakdown parameters far beyond what tiny groups support must
        // clamp rather than panic inside gfl-defense.
        let (trainer, groups) = tiny_world(13);
        let t = Trainer::new(
            trainer.config.clone(),
            trainer.model.clone(),
            trainer.train_data().clone(),
            trainer.partition().clone(),
            trainer.test.clone(),
        )
        .with_robust_agg(RobustAggRule::MultiKrum {
            byzantine: 50,
            select: 50,
        });
        let h = t.run(&groups, &FedAvg, SamplingStrategy::Random);
        assert!(!h.is_empty());
    }

    #[test]
    #[should_panic(expected = "incompatible with secure aggregation")]
    fn robust_aggregation_rejects_secure_aggregation() {
        let (trainer, _) = tiny_world(14);
        let mut cfg = trainer.config.clone();
        cfg.secure_aggregation = true;
        let _ = Trainer::new(
            cfg,
            trainer.model.clone(),
            trainer.train_data().clone(),
            trainer.partition().clone(),
            trainer.test.clone(),
        )
        .with_robust_agg(RobustAggRule::CoordinateMedian);
    }

    #[test]
    fn sampled_groups_clamped_to_available() {
        let (trainer, groups) = tiny_world(7);
        let mut cfg = GroupFelConfig::tiny();
        cfg.sampled_groups = 500; // more than exist
        let trainer = Trainer::new(
            cfg,
            trainer.model.clone(),
            trainer.train_data().clone(),
            trainer.partition().clone(),
            trainer.test.clone(),
        );
        let h = trainer.run(&groups, &FedAvg, SamplingStrategy::Random);
        assert!(!h.is_empty());
    }
}
