//! Probabilistic group sampling at the cloud (§6).
//!
//! Each group `g` gets probability `p_g = w(1/CoV(g)) / Σ w(1/CoV)`
//! (Eq. 34) with a non-decreasing emphasis function `w`:
//!
//! * `RCoV`:   `w(x) = x`      — mild preference for balanced groups
//! * `SRCoV`:  `w(x) = x²`     — stronger
//! * `ESRCoV`: `w(x) = e^{x²}` — near-top-k selection (the paper's default)
//! * `Random`: uniform probabilities (the baseline)
//!
//! Each round, `S = |S_t|` distinct groups are drawn *without replacement*
//! proportionally to `p` (successive draws renormalize over the remainder).
//!
//! Aggregation weighting (§3.1, §6.2):
//! * [`AggregationWeighting::Standard`] — Line 15 of Algorithm 1,
//!   `w_g = n_g / n_t` (biased toward frequently-sampled groups).
//! * [`AggregationWeighting::Unbiased`] — Eq. 4, multiplies by `1/(p_g·S)`;
//!   unbiased but numerically fragile when some `p_g` is tiny.
//! * [`AggregationWeighting::Stabilized`] — Eq. 35, the unbiased weights
//!   re-normalized to sum to one; trades strict unbiasedness for stability.

use gfl_tensor::Scalar;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The emphasis function `w` of Eq. 34 (or uniform sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// Uniform sampling — every group equally likely.
    Random,
    /// `w(x) = x` (reciprocal CoV).
    RCov,
    /// `w(x) = x²` (squared reciprocal CoV).
    SRCov,
    /// `w(x) = e^{x²}` (exponential squared reciprocal CoV) — the paper's
    /// best performer and default.
    ESRCov,
}

impl SamplingStrategy {
    /// Short name used in figures.
    pub fn name(&self) -> &'static str {
        match self {
            SamplingStrategy::Random => "Random",
            SamplingStrategy::RCov => "RCoV",
            SamplingStrategy::SRCov => "SRCoV",
            SamplingStrategy::ESRCov => "ESRCoV",
        }
    }

    /// Computes the probability vector `p` from group CoVs (Eq. 34).
    ///
    /// CoVs are floored at a small ε so perfectly balanced groups (CoV = 0)
    /// get large-but-finite weight; infinite CoVs (degenerate groups) get
    /// zero weight. The exponent of `ESRCoV` is clamped to avoid overflow —
    /// the ordering of weights is preserved.
    pub fn probabilities(&self, covs: &[Scalar]) -> Vec<Scalar> {
        let n = covs.len();
        if n == 0 {
            return Vec::new();
        }
        if matches!(self, SamplingStrategy::Random) {
            return vec![1.0 / n as Scalar; n];
        }
        const EPS: Scalar = 0.05;
        let weights: Vec<f64> = covs
            .iter()
            .map(|&cov| {
                if !cov.is_finite() {
                    return 0.0;
                }
                let x = 1.0 / f64::from(cov.max(EPS));
                match self {
                    SamplingStrategy::RCov => x,
                    SamplingStrategy::SRCov => x * x,
                    // e^{x²} overflows past x ≈ 26.6; cap the exponent far
                    // above any realistic 1/CoV while staying finite.
                    SamplingStrategy::ESRCov => (x * x).min(500.0).exp(),
                    SamplingStrategy::Random => unreachable!(),
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return vec![1.0 / n as Scalar; n];
        }
        weights.iter().map(|&w| (w / total) as Scalar).collect()
    }
}

/// Draws `s` distinct indices without replacement, proportional to `p`.
///
/// # Panics
/// Panics if `s` exceeds the number of groups with positive probability
/// plus the number needed (it falls back to uniform over leftovers so any
/// `s ≤ p.len()` succeeds).
pub fn sample_without_replacement(rng: &mut impl Rng, p: &[Scalar], s: usize) -> Vec<usize> {
    assert!(s <= p.len(), "cannot sample {s} of {} groups", p.len());
    let mut weights: Vec<f64> = p.iter().map(|&x| f64::from(x.max(0.0))).collect();
    let mut chosen = Vec::with_capacity(s);
    for _ in 0..s {
        let total: f64 = weights.iter().sum();
        let idx = if total <= 0.0 {
            // All remaining weights zero: fall back to uniform over unchosen.
            let remaining: Vec<usize> =
                (0..weights.len()).filter(|i| !chosen.contains(i)).collect();
            remaining[rng.gen_range(0..remaining.len())]
        } else {
            let mut t = rng.gen::<f64>() * total;
            let mut pick = weights.len() - 1;
            for (i, &w) in weights.iter().enumerate() {
                t -= w;
                if t <= 0.0 && w > 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        chosen.push(idx);
        weights[idx] = 0.0;
    }
    chosen
}

/// How group models are combined at the cloud (Line 15 / Eq. 4 / Eq. 35).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationWeighting {
    /// `w_g = n_g / n_t` — normalize by the data volume of this round's
    /// participants (Line 15).
    Standard,
    /// `w_g = n_g / (n · p_g · S)` — the unbiasedness correction (Eq. 4).
    Unbiased,
    /// Eq. 4 weights re-normalized to sum to 1 (Eq. 35).
    Stabilized,
}

/// Computes the global-aggregation weight of every *sampled* group.
///
/// * `group_sizes[k]` — `n_g` of sampled group `k`.
/// * `probs[k]` — sampling probability `p_g` of sampled group `k`.
/// * `total_samples` — `n`, the population data volume.
pub fn aggregation_weights(
    weighting: AggregationWeighting,
    group_sizes: &[usize],
    probs: &[Scalar],
    total_samples: usize,
) -> Vec<Scalar> {
    let mut out = Vec::new();
    aggregation_weights_into(weighting, group_sizes, probs, total_samples, &mut out);
    out
}

/// [`aggregation_weights`] into a caller-provided buffer — the trainer's
/// steady-state path, which reuses one pooled `Vec` across rounds instead
/// of allocating a weight vector per round. `out` is cleared first; the
/// arithmetic (and hence every f32 result) is identical to the allocating
/// form.
pub fn aggregation_weights_into(
    weighting: AggregationWeighting,
    group_sizes: &[usize],
    probs: &[Scalar],
    total_samples: usize,
    out: &mut Vec<Scalar>,
) {
    assert_eq!(group_sizes.len(), probs.len());
    out.clear();
    let s = group_sizes.len();
    if s == 0 {
        return;
    }
    match weighting {
        AggregationWeighting::Standard => {
            let n_t: usize = group_sizes.iter().sum();
            out.extend(
                group_sizes
                    .iter()
                    .map(|&n_g| n_g as Scalar / n_t.max(1) as Scalar),
            );
        }
        AggregationWeighting::Unbiased => {
            out.extend(group_sizes.iter().zip(probs.iter()).map(|(&n_g, &p_g)| {
                let denom = (p_g as f64) * s as f64 * total_samples.max(1) as f64;
                (n_g as f64 / denom.max(f64::MIN_POSITIVE)) as Scalar
            }));
        }
        AggregationWeighting::Stabilized => {
            aggregation_weights_into(
                AggregationWeighting::Unbiased,
                group_sizes,
                probs,
                total_samples,
                out,
            );
            let total: f64 = out.iter().map(|&w| f64::from(w)).sum();
            if total <= 0.0 || !total.is_finite() {
                out.clear();
                out.resize(s, 1.0 / s as Scalar);
                return;
            }
            for w in out.iter_mut() {
                *w = (f64::from(*w) / total) as Scalar;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfl_tensor::init;

    #[test]
    fn probabilities_sum_to_one() {
        let covs = vec![0.1, 0.5, 1.0, 2.0];
        for strat in [
            SamplingStrategy::Random,
            SamplingStrategy::RCov,
            SamplingStrategy::SRCov,
            SamplingStrategy::ESRCov,
        ] {
            let p = strat.probabilities(&covs);
            let sum: f32 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "{strat:?}: {sum}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn lower_cov_gets_higher_probability() {
        let covs = vec![0.2, 0.4, 0.8];
        for strat in [
            SamplingStrategy::RCov,
            SamplingStrategy::SRCov,
            SamplingStrategy::ESRCov,
        ] {
            let p = strat.probabilities(&covs);
            assert!(p[0] > p[1] && p[1] > p[2], "{strat:?}: {p:?}");
        }
    }

    #[test]
    fn emphasis_ordering_rcov_to_esrcov() {
        // The stronger the emphasis function, the more mass on the best
        // group (§6.1's escalation argument).
        let covs = vec![0.2, 0.4, 0.8, 1.6];
        let r = SamplingStrategy::RCov.probabilities(&covs)[0];
        let sr = SamplingStrategy::SRCov.probabilities(&covs)[0];
        let esr = SamplingStrategy::ESRCov.probabilities(&covs)[0];
        assert!(r < sr && sr < esr, "r={r} sr={sr} esr={esr}");
    }

    #[test]
    fn esrcov_does_not_overflow_on_tiny_cov() {
        let p = SamplingStrategy::ESRCov.probabilities(&[1e-9, 0.5]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!(p[0] > p[1]);
    }

    #[test]
    fn infinite_cov_gets_zero_probability() {
        let p = SamplingStrategy::RCov.probabilities(&[0.5, f32::INFINITY]);
        assert_eq!(p[1], 0.0);
        assert!((p[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn random_is_uniform() {
        let p = SamplingStrategy::Random.probabilities(&[0.1, 99.0, 3.0]);
        assert_eq!(p, vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn sampling_without_replacement_is_distinct_and_sized() {
        let mut rng = init::rng(1);
        let p = vec![0.7, 0.1, 0.1, 0.05, 0.05];
        for s in 1..=5 {
            let picks = sample_without_replacement(&mut rng, &p, s);
            assert_eq!(picks.len(), s);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), s, "duplicates in {picks:?}");
        }
    }

    #[test]
    fn sampling_respects_probabilities_statistically() {
        let mut rng = init::rng(2);
        let p = vec![0.8, 0.1, 0.1];
        let mut first_counts = [0usize; 3];
        for _ in 0..2000 {
            let picks = sample_without_replacement(&mut rng, &p, 1);
            first_counts[picks[0]] += 1;
        }
        let frac = first_counts[0] as f64 / 2000.0;
        assert!((frac - 0.8).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn zero_probability_groups_only_picked_as_fallback() {
        let mut rng = init::rng(3);
        let p = vec![0.0, 1.0, 0.0];
        // s=1 must always pick index 1.
        for _ in 0..50 {
            assert_eq!(sample_without_replacement(&mut rng, &p, 1), vec![1]);
        }
        // s=3 must include everything exactly once.
        let mut picks = sample_without_replacement(&mut rng, &p, 3);
        picks.sort_unstable();
        assert_eq!(picks, vec![0, 1, 2]);
    }

    #[test]
    fn standard_weights_sum_to_one() {
        let w = aggregation_weights(
            AggregationWeighting::Standard,
            &[100, 300],
            &[0.5, 0.5],
            1000,
        );
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((w[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn unbiased_weights_correct_for_sampling_probability() {
        // A group sampled twice as often gets half the weight per Eq. 4.
        let w = aggregation_weights(
            AggregationWeighting::Unbiased,
            &[100, 100],
            &[0.6, 0.3],
            200,
        );
        assert!((w[0] / w[1] - 0.5).abs() < 1e-5, "{w:?}");
    }

    #[test]
    fn unbiased_is_unbiased_in_expectation() {
        // E[Σ_{g∈S_t} n_g/(n·p_g·S) · x_g] = Σ_g n_g/n · x_g for single-draw
        // sampling (S=1): verify by enumeration.
        let probs = [0.5f32, 0.3, 0.2];
        let sizes = [10usize, 20, 30];
        let values = [1.0f64, 2.0, 3.0]; // scalar stand-ins for models
        let n: usize = 60;
        let mut expectation = 0.0f64;
        for g in 0..3 {
            let w =
                aggregation_weights(AggregationWeighting::Unbiased, &[sizes[g]], &[probs[g]], n)[0];
            expectation += f64::from(probs[g]) * f64::from(w) * values[g];
        }
        let want: f64 = sizes
            .iter()
            .zip(values.iter())
            .map(|(&s, &v)| s as f64 / n as f64 * v)
            .sum();
        assert!((expectation - want).abs() < 1e-6, "{expectation} vs {want}");
    }

    #[test]
    fn stabilized_weights_sum_to_one_even_with_tiny_probs() {
        let w = aggregation_weights(
            AggregationWeighting::Stabilized,
            &[50, 50, 50],
            &[1e-6, 0.5, 0.5],
            150,
        );
        let sum: f32 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        // The tiny-probability group dominates after unbiasing — Eq. 35
        // keeps it finite but it still carries the most weight (§6.2's
        // caution about picking |S_t| well).
        assert!(w[0] > w[1]);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert!(SamplingStrategy::ESRCov.probabilities(&[]).is_empty());
        assert!(aggregation_weights(AggregationWeighting::Standard, &[], &[], 0).is_empty());
    }
}
