//! The convergence-analysis constants of §4 (Theorem 1) evaluated for
//! concrete configurations.
//!
//! The theorem bounds the average squared gradient norm by three terms:
//!
//! ```text
//! (f(x₀) − f*)/(λ₁ηTKE)  +  λ_s·Γ_p/|S_t| / (λ₁TKE)  +  γΓ(λ₂σ² + λ₃ζ² + λ₄ζ_g²)/(λ₁T)
//! ```
//!
//! with γ (Eq. 11) and Γ (Eq. 12) the squared-CoV-style data-volume
//! dispersion constants and `Γ_p ≥ Σ 1/p_g` (Eq. 12) the sampling-variance
//! constant. This module computes each piece so experiments can *exhibit*
//! the paper's three key observations (§4.3): the bound grows with ζ_g,
//! grows with Γ_p, and the identity γ − 1 = CoV(n_i)² holds.

use gfl_tensor::{stats, Scalar};
use serde::{Deserialize, Serialize};

/// γ of Eq. 11 for one group: `|g|²·[1/|g|² + Var(n_i/n_g)]`.
///
/// Returns 1.0 for empty/degenerate groups (the theoretical minimum,
/// attained when every client holds the same amount of data).
pub fn gamma(client_samples: &[usize]) -> f64 {
    dispersion_constant(client_samples)
}

/// Γ of Eq. 12 across groups: `|G|²·[1/|G|² + Var(n_g/n)]`.
pub fn big_gamma(group_samples: &[usize]) -> f64 {
    dispersion_constant(group_samples)
}

/// Shared form of Eq. 11/12: `k²·[1/k² + Var(x_i/Σx)] = 1 + CoV(x)²`.
fn dispersion_constant(samples: &[usize]) -> f64 {
    let k = samples.len();
    if k == 0 {
        return 1.0;
    }
    let total: usize = samples.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let fracs: Vec<Scalar> = samples
        .iter()
        .map(|&s| s as Scalar / total as Scalar)
        .collect();
    let var = f64::from(stats::variance(&fracs));
    let k = k as f64;
    k * k * (1.0 / (k * k) + var)
}

/// `Γ_p = Σ_g 1/p_g` (Eq. 12) — the sampling-variance constant. Infinite
/// if any probability is zero (such a group can never be corrected for).
pub fn gamma_p(probs: &[Scalar]) -> f64 {
    probs
        .iter()
        .map(|&p| {
            if p <= 0.0 {
                f64::INFINITY
            } else {
                1.0 / f64::from(p)
            }
        })
        .sum()
}

/// Inputs to the Theorem 1 bound.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TheoremInputs {
    /// Initial optimality gap `f(x₀) − E[f(x_T)]`.
    pub initial_gap: f64,
    /// Learning rate η.
    pub eta: f64,
    /// Global rounds T, group rounds K, local rounds E.
    pub t: usize,
    pub k: usize,
    pub e: usize,
    /// Smoothness constant L (Assumption 2).
    pub l: f64,
    /// Local gradient variance σ² (Assumption 1).
    pub sigma_sq: f64,
    /// Local heterogeneity ζ² (Assumption 3).
    pub zeta_sq: f64,
    /// Group heterogeneity ζ_g² (Assumption 4) — the quantity CoV-Grouping
    /// exists to reduce.
    pub zeta_g_sq: f64,
    /// γ (Eq. 11), Γ (Eq. 12), Γ_p, |S_t|.
    pub gamma: f64,
    pub big_gamma: f64,
    pub gamma_p: f64,
    pub sampled: usize,
    /// Mean group size |g| (enters λ_σ).
    pub group_size: f64,
}

/// The three additive terms of the Theorem 1 RHS, kept separate so
/// experiments can show which one each design lever moves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TheoremBound {
    /// `(f(x₀) − f*) / (λ₁ηTKE)` — the optimization term.
    pub optimization: f64,
    /// `λ_s·Γ_p/|S_t| / (λ₁TKE)` — the sampling-variance term.
    pub sampling: f64,
    /// `γΓ(λ₂σ² + λ₃ζ² + λ₄ζ_g²) / (λ₁T)` — the heterogeneity term.
    pub heterogeneity: f64,
}

impl TheoremBound {
    pub fn total(&self) -> f64 {
        self.optimization + self.sampling + self.heterogeneity
    }
}

/// Evaluates the RHS of Eq. 10 with the λ-definitions of Eq. 13–17.
///
/// Returns `None` when the step-size conditions (Eq. 14, Eq. 18) are
/// violated — i.e. the theorem does not apply to this configuration
/// (η too large for the given K, E, L).
pub fn theorem1_bound(inp: &TheoremInputs) -> Option<TheoremBound> {
    let (eta, l) = (inp.eta, inp.l);
    let (t, k, e) = (inp.t as f64, inp.k as f64, inp.e as f64);
    let (gamma, big_gamma) = (inp.gamma, inp.big_gamma);

    // Eq. 18: η² ≤ η/(2KE)  ⟺  η ≤ 1/(2KE).
    if eta * eta > eta / (2.0 * k * e) {
        return None;
    }
    // Eq. 16: λ_f = 30η²K²(1 + 90γη²E²L²)
    let lambda_f = 30.0 * eta * eta * k * k * (1.0 + 90.0 * gamma * eta * eta * e * e * l * l);
    // Eq. 14: λ₁ ≤ 1/2 − 3λ_f·η·γΓ·K·E·L²  must be positive.
    let lambda1 = 0.5 - 3.0 * lambda_f * eta * gamma * big_gamma * k * e * l * l;
    if lambda1 <= 0.0 {
        return None;
    }
    // Eq. 17: λ_σ = 5Kη²E²[1 + ((1+6K)E + 9K)·10η²EL² + 18K/(|g|E)]
    let g = inp.group_size.max(1.0);
    let lambda_sigma = 5.0
        * k
        * eta
        * eta
        * e
        * e
        * (1.0
            + ((1.0 + 6.0 * k) * e + 9.0 * k) * 10.0 * eta * eta * e * l * l
            + 18.0 * k / (g * e));
    // Eq. 15: λ₂ = 3λ_σγL² + 5η²E²L²;  λ₃ = 2700η⁴γK²E⁴L²
    let lambda2 = 3.0 * lambda_sigma * gamma * l * l + 5.0 * eta * eta * e * e * l * l;
    let lambda3 = 2700.0 * eta.powi(4) * gamma * k * k * e.powi(4) * l * l;
    // Eq. 16: λ₄ = 90η²K²E²L²
    let lambda4 = 90.0 * eta * eta * k * k * e * e * l * l;
    // Eq. 13: λ_s = ηγΓK²(1 + 10η²E²L²σ²)
    let lambda_s =
        eta * gamma * big_gamma * k * k * (1.0 + 10.0 * eta * eta * e * e * l * l * inp.sigma_sq);

    let optimization = inp.initial_gap / (lambda1 * eta * t * k * e);
    let sampling = lambda_s * inp.gamma_p / inp.sampled.max(1) as f64 / (lambda1 * t * k * e);
    let heterogeneity = gamma
        * big_gamma
        * (lambda2 * inp.sigma_sq + lambda3 * inp.zeta_sq + lambda4 * inp.zeta_g_sq)
        / (lambda1 * t);
    Some(TheoremBound {
        optimization,
        sampling,
        heterogeneity,
    })
}

impl TheoremInputs {
    /// A baseline configuration in the theorem's validity region, used by
    /// tests and the theory demo example.
    pub fn reference() -> Self {
        Self {
            initial_gap: 2.0,
            eta: 0.01,
            t: 200,
            k: 5,
            e: 2,
            l: 1.0,
            sigma_sq: 1.0,
            zeta_sq: 1.0,
            zeta_g_sq: 0.5,
            gamma: 1.2,
            big_gamma: 1.3,
            gamma_p: 120.0,
            sampled: 12,
            group_size: 6.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_is_one_for_equal_clients() {
        assert!((gamma(&[50, 50, 50, 50]) - 1.0).abs() < 1e-9);
        assert_eq!(gamma(&[]), 1.0);
    }

    #[test]
    fn gamma_identity_with_cov_squared() {
        // §4.3: γ − 1 = (σ_c/μ_c)² over client sample counts.
        let samples = [10usize, 20, 30, 60];
        let g = gamma(&samples);
        let floats: Vec<f32> = samples.iter().map(|&s| s as f32).collect();
        let cov = f64::from(stats::coefficient_of_variation(&floats));
        assert!(
            (g - 1.0 - cov * cov).abs() < 1e-6,
            "γ−1={} CoV²={}",
            g - 1.0,
            cov * cov
        );
    }

    #[test]
    fn gamma_grows_with_imbalance() {
        let balanced = gamma(&[25, 25, 25, 25]);
        let skewed = gamma(&[1, 1, 1, 97]);
        assert!(skewed > balanced + 1.0);
    }

    #[test]
    fn gamma_p_prefers_uniform_sampling() {
        let uniform = gamma_p(&[0.25; 4]);
        let skewed = gamma_p(&[0.7, 0.1, 0.1, 0.1]);
        assert!((uniform - 16.0).abs() < 1e-6);
        assert!(skewed > uniform);
        assert!(gamma_p(&[0.5, 0.0]).is_infinite());
    }

    #[test]
    fn bound_increases_with_group_heterogeneity() {
        // Key observation 1: larger ζ_g ⇒ slower convergence.
        let mut a = TheoremInputs::reference();
        let mut b = TheoremInputs::reference();
        a.zeta_g_sq = 0.1;
        b.zeta_g_sq = 2.0;
        let ba = theorem1_bound(&a).unwrap();
        let bb = theorem1_bound(&b).unwrap();
        assert!(bb.total() > ba.total());
        assert!(bb.heterogeneity > ba.heterogeneity);
        assert_eq!(bb.optimization, ba.optimization);
    }

    #[test]
    fn bound_increases_with_sampling_variance() {
        // Key observation 2: larger Γ_p ⇒ slower convergence.
        let mut a = TheoremInputs::reference();
        let mut b = TheoremInputs::reference();
        a.gamma_p = 60.0;
        b.gamma_p = 600.0;
        assert!(theorem1_bound(&b).unwrap().sampling > theorem1_bound(&a).unwrap().sampling);
    }

    #[test]
    fn bound_decreases_with_more_rounds() {
        let mut a = TheoremInputs::reference();
        let mut b = TheoremInputs::reference();
        a.t = 100;
        b.t = 1000;
        assert!(theorem1_bound(&b).unwrap().total() < theorem1_bound(&a).unwrap().total());
    }

    #[test]
    fn bound_decreases_with_smaller_gamma() {
        // Key observation 3: smaller γ helps.
        let mut a = TheoremInputs::reference();
        let mut b = TheoremInputs::reference();
        a.gamma = 1.0;
        b.gamma = 3.0;
        assert!(theorem1_bound(&a).unwrap().total() < theorem1_bound(&b).unwrap().total());
    }

    #[test]
    fn oversized_learning_rate_invalidates_theorem() {
        let mut inp = TheoremInputs::reference();
        inp.eta = 1.0; // violates η ≤ 1/(2KE) = 0.05
        assert!(theorem1_bound(&inp).is_none());
    }

    #[test]
    fn bound_terms_are_positive_in_validity_region() {
        let b = theorem1_bound(&TheoremInputs::reference()).unwrap();
        assert!(b.optimization > 0.0 && b.sampling > 0.0 && b.heterogeneity > 0.0);
        assert!(b.total().is_finite());
    }
}
