//! Self-healing membership: online group maintenance under client churn.
//!
//! §6.1 of the paper argues CoV-based group formation can be re-run as
//! membership shifts; this module makes that operational. It owns the
//! *current* partition of a federation whose population changes mid-run
//! (permanent departures, late arrivals — see `gfl_faults::ChurnPlan`) and
//! heals it when groups degrade:
//!
//! * **Departures** remove the client from its group immediately.
//! * **Arrivals** are migrated greedily into the CoV-best existing group
//!   on their edge (the Σ-CoV objective of `grouping::optimal`), or open
//!   a new group when their edge has none.
//! * A **group-health monitor** tracks, per group: the CoV drift since the
//!   group was (re)formed, a size floor, and a sliding window of
//!   survivor-quorum misses. A group degrading past the thresholds of
//!   [`RegroupPolicy`] is dissolved and its members migrate — with
//!   *hysteresis* ([`RegroupPolicy::cooldown`]) so transient noise cannot
//!   thrash the partition.
//! * Zero-member groups are always dissolved immediately (never held),
//!   bypassing hysteresis.
//! * A **periodic full re-formation** fallback
//!   ([`RegroupPolicy::full_reform_every`]) re-runs the grouping
//!   algorithm from scratch over the active population, bounding how far
//!   incremental repair can drift from a fresh formation.
//!
//! Everything is deterministic: membership transitions are pure functions
//! of the churn plan, repair is a greedy scan in fixed client/group order,
//! and re-formation derives its RNG from `(seed, round, edge)`. The whole
//! [`MembershipState`] serializes through checkpoints, so a churned,
//! faulted, healed run resumes bit-identically.

use gfl_data::LabelMatrix;
use gfl_faults::ChurnPlan;
use gfl_sim::Topology;
use gfl_tensor::{init, Scalar};
use serde::{Deserialize, Serialize};

use crate::cov::{cov_with_candidate, group_cov};
use crate::grouping::{validate_partition_of, GroupStats, GroupingAlgorithm, PartitionError};
use crate::sampling::SamplingStrategy;
use crate::Group;

/// When and how the engine heals a degraded partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegroupPolicy {
    /// Master switch: `false` freezes the partition at formation (churn
    /// still removes departed clients from training, but no repair runs
    /// and sampling probabilities stay at their formation values).
    pub enabled: bool,
    /// Dissolve groups that shrink below this many members (when a
    /// sibling group exists on the same edge to absorb them).
    pub size_floor: usize,
    /// Dissolve a group whose CoV rises more than this above its CoV at
    /// (re)formation time.
    pub cov_drift: Scalar,
    /// Sliding window (in sampled rounds) of survivor-quorum outcomes
    /// kept per group.
    pub quorum_window: usize,
    /// Quorum misses within the window that mark a group degraded.
    pub quorum_misses: usize,
    /// Hysteresis: minimum rounds between structural repairs. Zero-member
    /// dissolution bypasses this.
    pub cooldown: usize,
    /// Every this many rounds, re-run the grouping algorithm from scratch
    /// over the active population instead of repairing incrementally.
    /// `None` disables the fallback.
    pub full_reform_every: Option<usize>,
}

impl Default for RegroupPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            size_floor: 2,
            cov_drift: 0.5,
            quorum_window: 8,
            quorum_misses: 3,
            cooldown: 5,
            full_reform_every: None,
        }
    }
}

impl RegroupPolicy {
    /// The "frozen at round 0" baseline: membership still churns, but the
    /// partition is never repaired.
    pub fn frozen() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Why a group was dissolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeReason {
    /// Every member departed; nothing left to hold.
    Empty,
    /// Fewer members than [`RegroupPolicy::size_floor`].
    BelowSizeFloor,
    /// CoV drifted past baseline + [`RegroupPolicy::cov_drift`].
    CovDrift,
    /// Too many survivor-quorum misses within the window.
    QuorumMisses,
}

/// One membership or self-healing action, recorded in `RunHistory` and
/// serialized through checkpoints. Group indices refer to the partition
/// *at the time of the event*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RegroupEvent {
    /// A client permanently departed and was removed from its group.
    ClientDeparted {
        round: usize,
        client: usize,
        group: usize,
    },
    /// A client arrived (late) and was placed; `group` is `None` when the
    /// policy is frozen and the arrival was left unplaced.
    ClientArrived {
        round: usize,
        client: usize,
        group: Option<usize>,
    },
    /// A degraded group was dissolved; its members became orphans.
    GroupDissolved {
        round: usize,
        group: usize,
        reason: DegradeReason,
        orphans: usize,
    },
    /// An orphan was migrated into the CoV-best surviving group.
    ClientMigrated {
        round: usize,
        client: usize,
        to_group: usize,
    },
    /// The periodic fallback re-ran full group formation.
    PartitionReformed { round: usize, groups: usize },
}

impl RegroupEvent {
    /// The global round the event belongs to.
    pub fn round(&self) -> usize {
        match *self {
            RegroupEvent::ClientDeparted { round, .. }
            | RegroupEvent::ClientArrived { round, .. }
            | RegroupEvent::GroupDissolved { round, .. }
            | RegroupEvent::ClientMigrated { round, .. }
            | RegroupEvent::PartitionReformed { round, .. } => round,
        }
    }
}

impl std::fmt::Display for RegroupEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RegroupEvent::ClientDeparted { client, group, .. } => {
                write!(f, "client {client} departed group {group}")
            }
            RegroupEvent::ClientArrived {
                client,
                group: Some(g),
                ..
            } => write!(f, "client {client} arrived, placed in group {g}"),
            RegroupEvent::ClientArrived {
                client,
                group: None,
                ..
            } => write!(f, "client {client} arrived, left unplaced (frozen)"),
            RegroupEvent::GroupDissolved {
                group,
                reason,
                orphans,
                ..
            } => write!(f, "group {group} dissolved ({reason:?}), {orphans} orphans"),
            RegroupEvent::ClientMigrated {
                client, to_group, ..
            } => write!(f, "client {client} migrated to group {to_group}"),
            RegroupEvent::PartitionReformed { groups, .. } => {
                write!(f, "partition fully re-formed into {groups} groups")
            }
        }
    }
}

/// Event counts by kind, for quick reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegroupSummary {
    pub departures: usize,
    pub arrivals: usize,
    pub dissolved: usize,
    pub migrations: usize,
    pub reformations: usize,
}

impl RegroupSummary {
    /// Total number of events.
    pub fn total(&self) -> usize {
        self.departures + self.arrivals + self.dissolved + self.migrations + self.reformations
    }
}

impl std::fmt::Display for RegroupSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} departures, {} arrivals, {} groups dissolved, \
             {} clients migrated, {} full reformations",
            self.departures, self.arrivals, self.dissolved, self.migrations, self.reformations
        )
    }
}

/// Tallies a regroup log into per-kind counts.
pub fn summarize_regroups(events: &[RegroupEvent]) -> RegroupSummary {
    let mut s = RegroupSummary::default();
    for e in events {
        match e {
            RegroupEvent::ClientDeparted { .. } => s.departures += 1,
            RegroupEvent::ClientArrived { .. } => s.arrivals += 1,
            RegroupEvent::GroupDissolved { .. } => s.dissolved += 1,
            RegroupEvent::ClientMigrated { .. } => s.migrations += 1,
            RegroupEvent::PartitionReformed { .. } => s.reformations += 1,
        }
    }
    s
}

/// Health record of one group: its CoV at (re)formation and the recent
/// survivor-quorum outcomes (`true` = missed) of rounds it was sampled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupHealth {
    pub baseline_cov: Scalar,
    pub quorum_misses: Vec<bool>,
}

impl GroupHealth {
    fn fresh(baseline_cov: Scalar) -> Self {
        Self {
            baseline_cov,
            quorum_misses: Vec::new(),
        }
    }
}

/// The live membership of a self-healing run: the current partition, who
/// is an active member, per-group health, and the sampling probabilities
/// in force. Serialized whole through checkpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MembershipState {
    /// Current partition (global client ids). Index-stable between heals.
    pub groups: Vec<Group>,
    /// `active[c]` ⇔ client `c` is currently a member of some group.
    pub active: Vec<bool>,
    /// Health records, index-aligned with `groups`.
    pub health: Vec<GroupHealth>,
    /// Sampling probabilities in force, index-aligned with `groups`.
    /// Refreshed on every structural change when the policy is enabled;
    /// frozen at formation otherwise.
    pub probs: Vec<Scalar>,
    /// Round of the last structural change (for hysteresis).
    pub last_heal: usize,
    /// The healing policy this state was formed under.
    pub policy: RegroupPolicy,
}

/// Maps every client to its edge server.
pub fn edge_map(topology: &Topology) -> Vec<usize> {
    let mut edge_of = vec![0usize; topology.num_clients()];
    for j in 0..topology.num_edges() {
        for &c in topology.clients_of(j) {
            edge_of[c] = j;
        }
    }
    edge_of
}

/// Runs the grouping algorithm per edge over the `active` clients only,
/// returning groups in global ids. With every client active and `salt == 0`
/// this reproduces `engine::form_groups_per_edge` exactly.
pub fn form_groups_active(
    algo: &dyn GroupingAlgorithm,
    topology: &Topology,
    labels: &LabelMatrix,
    active: &[bool],
    seed: u64,
    salt: u64,
) -> Vec<Group> {
    let mut groups = Vec::new();
    for j in 0..topology.num_edges() {
        let members: Vec<usize> = topology
            .clients_of(j)
            .iter()
            .copied()
            .filter(|&c| active[c])
            .collect();
        if members.is_empty() {
            continue;
        }
        let local = labels.restrict(&members);
        let mut rng = init::rng(seed ^ (0x9E37_79B9 ^ (j as u64) << 32) ^ salt);
        for group in algo.form_groups(&local, &mut rng) {
            groups.push(group.into_iter().map(|i| members[i]).collect());
        }
    }
    groups
}

impl MembershipState {
    /// Forms the initial partition over the clients present at
    /// `start_round` and computes its health baselines and sampling
    /// probabilities.
    #[allow(clippy::too_many_arguments)]
    pub fn form(
        algo: &dyn GroupingAlgorithm,
        topology: &Topology,
        labels: &LabelMatrix,
        plan: Option<&ChurnPlan>,
        policy: RegroupPolicy,
        seed: u64,
        sampling: SamplingStrategy,
        start_round: usize,
    ) -> Result<Self, PartitionError> {
        let n = topology.num_clients();
        let active: Vec<bool> = (0..n)
            .map(|c| plan.is_none_or(|p| p.present(c, start_round)))
            .collect();
        let groups = form_groups_active(algo, topology, labels, &active, seed, 0);
        let members: Vec<usize> = (0..n).filter(|&c| active[c]).collect();
        validate_partition_of(&groups, &members, n)?;
        let health = groups
            .iter()
            .map(|g| GroupHealth::fresh(group_cov(labels, g)))
            .collect();
        let mut state = Self {
            groups,
            active,
            health,
            probs: Vec::new(),
            last_heal: start_round,
            policy,
        };
        state.refresh_probs(labels, sampling);
        Ok(state)
    }

    /// Recomputes sampling probabilities from the current groups' CoVs.
    pub fn refresh_probs(&mut self, labels: &LabelMatrix, sampling: SamplingStrategy) {
        let covs: Vec<Scalar> = self.groups.iter().map(|g| group_cov(labels, g)).collect();
        self.probs = sampling.probabilities(&covs);
    }

    /// Number of currently active members.
    pub fn active_members(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Applies round-`t` membership deltas from the churn plan: departed
    /// clients leave their groups; arrivals are placed greedily (or left
    /// unplaced when the policy is frozen). Returns the transition events.
    pub fn apply_churn(
        &mut self,
        plan: &ChurnPlan,
        t: usize,
        labels: &LabelMatrix,
        topology: &Topology,
    ) -> Vec<RegroupEvent> {
        let mut events = Vec::new();
        let n = self.active.len();
        // Departures first, so an arrival can take a departed seat's group.
        // A one-pass client→group index makes each departure O(|group|)
        // instead of a scan over every group — the difference between a
        // round and a coffee break at 10⁶ clients.
        let mut group_of: Vec<usize> = vec![usize::MAX; n];
        for (gi, g) in self.groups.iter().enumerate() {
            for &m in g {
                group_of[m] = gi;
            }
        }
        for (c, &gi) in group_of.iter().enumerate() {
            if self.active[c] && !plan.present(c, t) {
                if gi != usize::MAX {
                    self.groups[gi].retain(|&m| m != c);
                    events.push(RegroupEvent::ClientDeparted {
                        round: t,
                        client: c,
                        group: gi,
                    });
                }
                self.active[c] = false;
            }
        }
        let edge_of = edge_map(topology);
        // Arrival placement consults running per-group histograms
        // ([`GroupStats`], exact u64 counts ⇒ bitwise-identical CoVs),
        // built lazily on the first arrival and updated in O(labels) per
        // placement.
        let mut index: Option<(Vec<GroupStats>, Vec<Vec<usize>>)> = None;
        for c in 0..n {
            if !self.active[c] && plan.present(c, t) {
                if self.policy.enabled {
                    let (stats, by_edge) = index.get_or_insert_with(|| {
                        (
                            self.groups
                                .iter()
                                .map(|g| GroupStats::from_members(labels, g))
                                .collect(),
                            self.groups_by_edge(&edge_of, topology.num_edges()),
                        )
                    });
                    let gi = self.place_client(labels, &edge_of, stats, by_edge, c);
                    self.active[c] = true;
                    events.push(RegroupEvent::ClientArrived {
                        round: t,
                        client: c,
                        group: Some(gi),
                    });
                } else if plan.arrival_round(c) == t {
                    // Frozen policy: the arrival is noted once, never placed.
                    events.push(RegroupEvent::ClientArrived {
                        round: t,
                        client: c,
                        group: None,
                    });
                }
            }
        }
        events
    }

    /// Greedy incremental placement: the group on `client`'s edge whose
    /// CoV-with-candidate is lowest (the Σ-CoV objective of
    /// `grouping::optimal`, restricted to single-client moves). Opens a
    /// new group when the edge has none. Placement counts as a
    /// re-formation of the receiving group: its health baseline resets.
    ///
    /// `stats` carries one running histogram per group (aligned with
    /// `self.groups`) and is updated in place; since the running counts
    /// are exact `u64`s, every CoV here is bit-identical to recomputing
    /// the candidate's histogram from the member list. `by_edge` narrows
    /// the candidate scan to the client's own edge — at 10⁶ clients the
    /// difference between O(groups-on-edge) and O(all-groups) per arrival
    /// is the difference between a sub-second regroup tick and hours.
    /// Both indices are built once per churn/heal pass.
    fn place_client(
        &mut self,
        labels: &LabelMatrix,
        edge_of: &[usize],
        stats: &mut Vec<GroupStats>,
        by_edge: &mut [Vec<usize>],
        client: usize,
    ) -> usize {
        debug_assert_eq!(stats.len(), self.groups.len());
        let e = edge_of[client];
        let mut best: Option<(usize, Scalar)> = None;
        // `by_edge[e]` holds this edge's group indices in ascending order,
        // so the scan visits the same candidates in the same order as a
        // full filtered sweep — the chosen group is bitwise-identical.
        for &gi in &by_edge[e] {
            if self.groups[gi].is_empty() {
                continue;
            }
            let cov = cov_with_candidate(labels, stats[gi].hist(), client);
            if best.is_none_or(|(_, b)| cov < b) {
                best = Some((gi, cov));
            }
        }
        match best {
            Some((gi, _)) => {
                self.groups[gi].push(client);
                stats[gi].add(labels, client);
                self.health[gi] = GroupHealth::fresh(stats[gi].cov());
                gi
            }
            None => {
                self.groups.push(vec![client]);
                let mut s = GroupStats::new(labels.num_labels());
                s.add(labels, client);
                self.health.push(GroupHealth::fresh(s.cov()));
                stats.push(s);
                let gi = self.groups.len() - 1;
                by_edge[e].push(gi);
                gi
            }
        }
    }

    /// Edge → ascending indices of the non-empty groups homed there
    /// (a group's edge is its first member's edge — groups never span
    /// edges). Built once per churn/heal pass and kept current by
    /// [`Self::place_client`] when it opens a new group.
    fn groups_by_edge(&self, edge_of: &[usize], num_edges: usize) -> Vec<Vec<usize>> {
        let mut by_edge = vec![Vec::new(); num_edges];
        for (gi, g) in self.groups.iter().enumerate() {
            if let Some(&m) = g.first() {
                by_edge[edge_of[m]].push(gi);
            }
        }
        by_edge
    }

    /// Feeds one round's sampling outcome to the health monitor: every
    /// sampled group records whether it missed the survivor quorum.
    pub fn observe_round(&mut self, sampled: &[usize], quorum_missed: &[usize]) {
        let window = self.policy.quorum_window.max(1);
        for &gi in sampled {
            if gi >= self.health.len() {
                continue;
            }
            let h = &mut self.health[gi];
            h.quorum_misses.push(quorum_missed.contains(&gi));
            if h.quorum_misses.len() > window {
                h.quorum_misses.remove(0);
            }
        }
    }

    /// Whether hysteresis permits a structural repair at round `t`.
    fn can_heal(&self, t: usize) -> bool {
        t >= self.last_heal + self.policy.cooldown
    }

    /// The reason a group currently counts as degraded, if any (empty
    /// groups are handled separately and unconditionally).
    fn degrade_reason(&self, labels: &LabelMatrix, gi: usize) -> Option<DegradeReason> {
        let g = &self.groups[gi];
        if g.is_empty() {
            return Some(DegradeReason::Empty);
        }
        if g.len() < self.policy.size_floor {
            return Some(DegradeReason::BelowSizeFloor);
        }
        let cov = group_cov(labels, g);
        if cov.is_finite() && cov > self.health[gi].baseline_cov + self.policy.cov_drift {
            return Some(DegradeReason::CovDrift);
        }
        let misses = self.health[gi].quorum_misses.iter().filter(|&&m| m).count();
        if misses >= self.policy.quorum_misses.max(1) {
            return Some(DegradeReason::QuorumMisses);
        }
        None
    }

    /// One health-check-and-repair pass for round `t`:
    ///
    /// 1. Periodic full re-formation when due (and past hysteresis).
    /// 2. Otherwise: dissolve empty groups unconditionally; past
    ///    hysteresis, dissolve degraded groups whose edge has a healthy
    ///    sibling and migrate the orphans greedily.
    ///
    /// Returns the repair events; errors if a repair ever produced a
    /// non-partition (defensive — surfaced instead of corrupting a run).
    pub fn heal(
        &mut self,
        t: usize,
        labels: &LabelMatrix,
        algo: &dyn GroupingAlgorithm,
        topology: &Topology,
        seed: u64,
        sampling: SamplingStrategy,
    ) -> Result<Vec<RegroupEvent>, PartitionError> {
        if !self.policy.enabled {
            return Ok(Vec::new());
        }
        let mut events = Vec::new();

        // Fallback: full re-formation on schedule.
        if let Some(period) = self.policy.full_reform_every {
            if period > 0 && t > 0 && t.is_multiple_of(period) && self.can_heal(t) {
                let salt = (t as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
                self.groups = form_groups_active(algo, topology, labels, &self.active, seed, salt);
                self.validate(topology)?;
                self.health = self
                    .groups
                    .iter()
                    .map(|g| GroupHealth::fresh(group_cov(labels, g)))
                    .collect();
                self.last_heal = t;
                self.refresh_probs(labels, sampling);
                events.push(RegroupEvent::PartitionReformed {
                    round: t,
                    groups: self.groups.len(),
                });
                return Ok(events);
            }
        }

        let edge_of = edge_map(topology);
        // Mark doomed groups: empty ones always, degraded ones past
        // hysteresis. Indices refer to the current partition.
        let past_cooldown = self.can_heal(t);
        let mut doomed: Vec<(usize, DegradeReason)> = Vec::new();
        for gi in 0..self.groups.len() {
            match self.degrade_reason(labels, gi) {
                Some(DegradeReason::Empty) => doomed.push((gi, DegradeReason::Empty)),
                Some(reason) if past_cooldown => doomed.push((gi, reason)),
                _ => {}
            }
        }
        if doomed.is_empty() {
            return Ok(events);
        }
        // A non-empty doomed group needs a surviving sibling on its edge
        // to absorb the orphans; otherwise it limps along.
        let doomed_set: Vec<usize> = doomed.iter().map(|&(gi, _)| gi).collect();
        doomed.retain(|&(gi, reason)| {
            if reason == DegradeReason::Empty {
                return true;
            }
            let e = edge_of[self.groups[gi][0]];
            self.groups
                .iter()
                .enumerate()
                .any(|(gj, g)| !doomed_set.contains(&gj) && !g.is_empty() && edge_of[g[0]] == e)
        });
        if doomed.is_empty() {
            return Ok(events);
        }

        // Dissolve: rebuild the partition without the doomed groups.
        let mut orphans: Vec<usize> = Vec::new();
        for &(gi, reason) in &doomed {
            events.push(RegroupEvent::GroupDissolved {
                round: t,
                group: gi,
                reason,
                orphans: self.groups[gi].len(),
            });
            orphans.extend(self.groups[gi].iter().copied());
        }
        let keep: Vec<usize> = (0..self.groups.len())
            .filter(|gi| !doomed.iter().any(|&(d, _)| d == *gi))
            .collect();
        self.groups = keep.iter().map(|&gi| self.groups[gi].clone()).collect();
        self.health = keep.iter().map(|&gi| self.health[gi].clone()).collect();

        // Migrate orphans greedily, in client-id order for determinism.
        // One histogram build over the surviving groups, then O(labels)
        // incremental updates per migration (bitwise-exact u64 counts).
        orphans.sort_unstable();
        let mut stats: Vec<GroupStats> = self
            .groups
            .iter()
            .map(|g| GroupStats::from_members(labels, g))
            .collect();
        let mut by_edge = self.groups_by_edge(&edge_of, topology.num_edges());
        for c in orphans {
            let gi = self.place_client(labels, &edge_of, &mut stats, &mut by_edge, c);
            events.push(RegroupEvent::ClientMigrated {
                round: t,
                client: c,
                to_group: gi,
            });
        }
        self.validate(topology)?;
        self.last_heal = t;
        self.refresh_probs(labels, sampling);
        Ok(events)
    }

    /// Checks that the current groups partition the active members.
    pub fn validate(&self, topology: &Topology) -> Result<(), PartitionError> {
        let members: Vec<usize> = (0..self.active.len()).filter(|&c| self.active[c]).collect();
        // Empty groups are legal transiently (before the next heal pass
        // dissolves them); filter them for the partition check.
        let non_empty: Vec<Group> = self
            .groups
            .iter()
            .filter(|g| !g.is_empty())
            .cloned()
            .collect();
        validate_partition_of(&non_empty, &members, topology.num_clients())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::CovGrouping;
    use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};

    fn world(seed: u64) -> (LabelMatrix, Topology) {
        let data = SyntheticSpec::tiny().generate(600, seed);
        let part = ClientPartition::dirichlet(&data, &PartitionSpec::tiny(0.5, seed));
        let topo = Topology::even_split(2, part.sizes());
        (part.label_matrix, topo)
    }

    fn algo() -> CovGrouping {
        // A tight MaxCoV so every edge forms several small groups — the
        // repair tests need sibling groups to migrate orphans into.
        CovGrouping {
            min_group_size: 2,
            max_cov: 0.05,
        }
    }

    #[test]
    fn formation_matches_static_grouping_when_everyone_is_present() {
        let (labels, topo) = world(1);
        let state = MembershipState::form(
            &algo(),
            &topo,
            &labels,
            None,
            RegroupPolicy::default(),
            1,
            SamplingStrategy::ESRCov,
            0,
        )
        .unwrap();
        let expected = crate::engine::form_groups_per_edge(&algo(), &topo, &labels, 1);
        assert_eq!(state.groups, expected);
        assert!(state.active.iter().all(|&a| a));
        assert_eq!(state.probs.len(), state.groups.len());
    }

    #[test]
    fn departures_shrink_and_arrivals_are_placed_on_their_edge() {
        let (labels, topo) = world(2);
        let plan = ChurnPlan {
            seed: 7,
            horizon: 10,
            departure_fraction: 0.4,
            arrival_fraction: 0.3,
            flap_prob: 0.0,
        };
        let mut state = MembershipState::form(
            &algo(),
            &topo,
            &labels,
            Some(&plan),
            RegroupPolicy::default(),
            2,
            SamplingStrategy::ESRCov,
            0,
        )
        .unwrap();
        let edge_of = edge_map(&topo);
        for t in 1..10 {
            let events = state.apply_churn(&plan, t, &labels, &topo);
            for e in &events {
                if let RegroupEvent::ClientArrived {
                    client,
                    group: Some(gi),
                    ..
                } = e
                {
                    // Placement respects the edge boundary.
                    let g = &state.groups[*gi];
                    assert!(g.contains(client));
                    assert!(g.iter().all(|&m| edge_of[m] == edge_of[*client]));
                }
            }
            state.validate(&topo).unwrap();
        }
        // Every departed client is out of every group.
        for c in 0..state.active.len() {
            if !plan.present(c, 9) {
                assert!(state.groups.iter().all(|g| !g.contains(&c)));
            }
        }
    }

    #[test]
    fn empty_groups_dissolve_immediately_despite_hysteresis() {
        let (labels, topo) = world(3);
        let mut state = MembershipState::form(
            &algo(),
            &topo,
            &labels,
            None,
            RegroupPolicy {
                cooldown: 1_000, // hysteresis would block everything else
                ..RegroupPolicy::default()
            },
            3,
            SamplingStrategy::ESRCov,
            0,
        )
        .unwrap();
        // Force group 0 empty by hand (as if every member departed).
        for c in state.groups[0].clone() {
            state.active[c] = false;
        }
        state.groups[0].clear();
        let before = state.groups.len();
        let events = state
            .heal(1, &labels, &algo(), &topo, 3, SamplingStrategy::ESRCov)
            .unwrap();
        assert_eq!(state.groups.len(), before - 1);
        assert!(matches!(
            events[0],
            RegroupEvent::GroupDissolved {
                reason: DegradeReason::Empty,
                orphans: 0,
                ..
            }
        ));
        state.validate(&topo).unwrap();
    }

    #[test]
    fn undersized_group_is_dissolved_and_members_migrate() {
        let (labels, topo) = world(4);
        let mut state = MembershipState::form(
            &algo(),
            &topo,
            &labels,
            None,
            RegroupPolicy {
                size_floor: 2,
                cooldown: 0,
                ..RegroupPolicy::default()
            },
            4,
            SamplingStrategy::ESRCov,
            0,
        )
        .unwrap();
        // Shrink group 0 to a single member.
        let victims: Vec<usize> = state.groups[0].iter().skip(1).copied().collect();
        for c in victims {
            state.groups[0].retain(|&m| m != c);
            state.active[c] = false;
        }
        let events = state
            .heal(10, &labels, &algo(), &topo, 4, SamplingStrategy::ESRCov)
            .unwrap();
        let summary = summarize_regroups(&events);
        assert_eq!(summary.dissolved, 1);
        assert_eq!(summary.migrations, 1);
        state.validate(&topo).unwrap();
    }

    #[test]
    fn quorum_miss_streak_triggers_dissolution() {
        let (labels, topo) = world(5);
        let mut state = MembershipState::form(
            &algo(),
            &topo,
            &labels,
            None,
            RegroupPolicy {
                quorum_window: 4,
                quorum_misses: 3,
                cooldown: 0,
                ..RegroupPolicy::default()
            },
            5,
            SamplingStrategy::ESRCov,
            0,
        )
        .unwrap();
        for _ in 0..3 {
            state.observe_round(&[0], &[0]); // group 0 sampled, missed
        }
        let events = state
            .heal(6, &labels, &algo(), &topo, 5, SamplingStrategy::ESRCov)
            .unwrap();
        assert!(
            events.iter().any(|e| matches!(
                e,
                RegroupEvent::GroupDissolved {
                    reason: DegradeReason::QuorumMisses,
                    ..
                }
            )),
            "{events:?}"
        );
        state.validate(&topo).unwrap();
    }

    #[test]
    fn hysteresis_blocks_back_to_back_repairs() {
        let (labels, topo) = world(6);
        let mut state = MembershipState::form(
            &algo(),
            &topo,
            &labels,
            None,
            RegroupPolicy {
                size_floor: 2,
                cooldown: 50,
                ..RegroupPolicy::default()
            },
            6,
            SamplingStrategy::ESRCov,
            0,
        )
        .unwrap();
        // Undersize a group; inside the cooldown the monitor must not act.
        let victims: Vec<usize> = state.groups[0].iter().skip(1).copied().collect();
        for c in victims {
            state.groups[0].retain(|&m| m != c);
            state.active[c] = false;
        }
        let events = state
            .heal(10, &labels, &algo(), &topo, 6, SamplingStrategy::ESRCov)
            .unwrap();
        assert!(events.is_empty(), "cooldown must block: {events:?}");
        let events = state
            .heal(50, &labels, &algo(), &topo, 6, SamplingStrategy::ESRCov)
            .unwrap();
        assert!(!events.is_empty(), "past cooldown the repair must run");
    }

    #[test]
    fn full_reformation_runs_on_schedule() {
        let (labels, topo) = world(7);
        let mut state = MembershipState::form(
            &algo(),
            &topo,
            &labels,
            None,
            RegroupPolicy {
                full_reform_every: Some(4),
                cooldown: 0,
                ..RegroupPolicy::default()
            },
            7,
            SamplingStrategy::ESRCov,
            0,
        )
        .unwrap();
        let events = state
            .heal(4, &labels, &algo(), &topo, 7, SamplingStrategy::ESRCov)
            .unwrap();
        assert!(matches!(
            events[0],
            RegroupEvent::PartitionReformed { round: 4, .. }
        ));
        state.validate(&topo).unwrap();
        assert_eq!(state.last_heal, 4);
    }

    #[test]
    fn frozen_policy_never_repairs() {
        let (labels, topo) = world(8);
        let mut state = MembershipState::form(
            &algo(),
            &topo,
            &labels,
            None,
            RegroupPolicy::frozen(),
            8,
            SamplingStrategy::ESRCov,
            0,
        )
        .unwrap();
        for c in state.groups[0].clone() {
            state.active[c] = false;
        }
        state.groups[0].clear();
        let events = state
            .heal(20, &labels, &algo(), &topo, 8, SamplingStrategy::ESRCov)
            .unwrap();
        assert!(events.is_empty());
        assert!(state.groups[0].is_empty(), "frozen keeps the husk");
    }

    #[test]
    fn state_roundtrips_through_json() {
        let (labels, topo) = world(9);
        let state = MembershipState::form(
            &algo(),
            &topo,
            &labels,
            Some(&ChurnPlan::moderate(9)),
            RegroupPolicy::default(),
            9,
            SamplingStrategy::ESRCov,
            0,
        )
        .unwrap();
        let json = serde_json::to_string(&state).unwrap();
        let back: MembershipState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn summary_counts_every_kind() {
        let events = vec![
            RegroupEvent::ClientDeparted {
                round: 1,
                client: 0,
                group: 0,
            },
            RegroupEvent::ClientArrived {
                round: 2,
                client: 5,
                group: Some(1),
            },
            RegroupEvent::GroupDissolved {
                round: 3,
                group: 0,
                reason: DegradeReason::BelowSizeFloor,
                orphans: 1,
            },
            RegroupEvent::ClientMigrated {
                round: 3,
                client: 2,
                to_group: 1,
            },
            RegroupEvent::PartitionReformed {
                round: 8,
                groups: 4,
            },
        ];
        let s = summarize_regroups(&events);
        assert_eq!(
            (
                s.departures,
                s.arrivals,
                s.dissolved,
                s.migrations,
                s.reformations
            ),
            (1, 1, 1, 1, 1)
        );
        assert_eq!(s.total(), 5);
        assert_eq!(events[4].round(), 8);
        let text = s.to_string();
        assert!(text.contains("1 departures") && text.contains("1 full reformations"));
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<RegroupEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
    }
}
