//! Property layer for incremental group-statistic maintenance (ISSUE 10,
//! satellite 2).
//!
//! The membership layer keeps one [`GroupStats`] per group and updates it
//! in O(labels) per event, instead of recomputing O(|g|·labels) histograms
//! on every churn tick. That is only sound if the running statistics stay
//! *bitwise* equal to a from-scratch rebuild — CoV, variance, and KL are
//! nonlinear in the histogram, so even a one-count drift would change
//! formation decisions. This suite drives arbitrary traces of moves,
//! departures, arrivals, and merges against a mirrored member-list model
//! and demands `to_bits()` equality of every derived metric after every
//! step, with [`GroupStats::from_members`] (and the public eager oracles
//! [`group_cov`] / [`histogram_variance`]) as the recompute reference.

use gfl_core::cov::group_cov;
use gfl_core::grouping::{histogram_variance, GroupStats};
use gfl_data::LabelMatrix;
use proptest::prelude::*;

/// An arbitrary label matrix: `clients × labels` counts in [0, 50].
fn matrix_strategy() -> impl Strategy<Value = LabelMatrix> {
    (6usize..24, 2usize..8).prop_flat_map(|(clients, labels)| {
        proptest::collection::vec(proptest::collection::vec(0u32..50, labels), clients)
            .prop_map(move |counts| LabelMatrix::new(counts, labels))
    })
}

/// A trace step: `(op selector, group pick, client/slot pick)`.
type Step = (u8, usize, usize);

fn trace_strategy() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec((0u8..4, 0usize..1 << 16, 0usize..1 << 16), 1..40)
}

/// Mirrored state: member lists (the model) + running stats (under test).
struct Groups {
    members: Vec<Vec<usize>>,
    stats: Vec<GroupStats>,
    /// Clients currently outside every group (departed / not yet arrived).
    pool: Vec<usize>,
}

impl Groups {
    fn new(labels: &LabelMatrix, num_groups: usize) -> Self {
        let mut members = vec![Vec::new(); num_groups];
        let mut pool = Vec::new();
        for c in 0..labels.num_clients() {
            // Seed roughly half the clients into groups round-robin; the
            // rest start in the pool so arrivals have material.
            if c % 2 == 0 {
                members[c / 2 % num_groups].push(c);
            } else {
                pool.push(c);
            }
        }
        let stats = members
            .iter()
            .map(|g| GroupStats::from_members(labels, g))
            .collect();
        Self {
            members,
            stats,
            pool,
        }
    }

    /// The zero-ULP contract, checked group by group after every step.
    fn assert_matches_recompute(&self, labels: &LabelMatrix) {
        let global = labels.global_distribution();
        for (g, stats) in self.members.iter().zip(&self.stats) {
            let full = GroupStats::from_members(labels, g);
            assert_eq!(stats, &full, "running histogram drifted for {g:?}");
            assert_eq!(stats.len(), g.len());
            assert_eq!(stats.cov().to_bits(), full.cov().to_bits());
            assert_eq!(
                stats.cov().to_bits(),
                group_cov(labels, g).to_bits(),
                "running CoV diverged from the eager oracle for {g:?}"
            );
            assert_eq!(
                stats.variance().to_bits(),
                histogram_variance(&labels.group_histogram(g)).to_bits()
            );
            assert_eq!(
                stats.kl_vs(&global).to_bits(),
                full.kl_vs(&global).to_bits()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_traces_never_drift(
        labels in matrix_strategy(),
        num_groups in 1usize..5,
        trace in trace_strategy(),
    ) {
        let mut state = Groups::new(&labels, num_groups);
        state.assert_matches_recompute(&labels);

        for (op, a, b) in trace {
            match op {
                // Move: lift a member out of one group into another.
                0 => {
                    let from = a % state.members.len();
                    if state.members[from].is_empty() {
                        continue;
                    }
                    let idx = b % state.members[from].len();
                    let c = state.members[from].remove(idx);
                    state.stats[from].remove(&labels, c);
                    let to = b % state.members.len();
                    state.members[to].push(c);
                    state.stats[to].add(&labels, c);
                }
                // Departure: member leaves the federation entirely.
                1 => {
                    let g = a % state.members.len();
                    if state.members[g].is_empty() {
                        continue;
                    }
                    let idx = b % state.members[g].len();
                    let c = state.members[g].remove(idx);
                    state.stats[g].remove(&labels, c);
                    state.pool.push(c);
                }
                // Arrival: pooled client joins a group, previewed first —
                // the preview must equal the committed CoV bitwise.
                2 => {
                    if state.pool.is_empty() {
                        continue;
                    }
                    let c = state.pool.remove(a % state.pool.len());
                    let g = b % state.members.len();
                    let preview = state.stats[g].cov_with_candidate(&labels, c);
                    state.members[g].push(c);
                    state.stats[g].add(&labels, c);
                    prop_assert_eq!(preview.to_bits(), state.stats[g].cov().to_bits());
                }
                // Merge: group b is absorbed into group a (when distinct
                // and more than one group remains).
                _ => {
                    if state.members.len() < 2 {
                        continue;
                    }
                    let into = a % state.members.len();
                    let from = b % state.members.len();
                    if into == from {
                        continue;
                    }
                    let absorbed = state.members.remove(from);
                    let absorbed_stats = state.stats.remove(from);
                    let into = if from < into { into - 1 } else { into };
                    state.members[into].extend(absorbed);
                    state.stats[into].merge(&absorbed_stats);
                }
            }
            state.assert_matches_recompute(&labels);
        }
    }

    /// Remove must be the exact inverse of add, even interleaved with
    /// unrelated traffic on the same stats object.
    #[test]
    fn add_remove_roundtrip_is_exact(
        labels in matrix_strategy(),
        picks in proptest::collection::vec(0usize..1 << 16, 1..12),
    ) {
        let n = labels.num_clients();
        let seed: Vec<usize> = (0..n / 2).collect();
        let mut stats = GroupStats::from_members(&labels, &seed);
        let baseline = stats.clone();
        for &p in &picks {
            stats.add(&labels, p % n);
        }
        for &p in picks.iter().rev() {
            stats.remove(&labels, p % n);
        }
        prop_assert_eq!(&stats, &baseline);
        prop_assert_eq!(stats.cov().to_bits(), baseline.cov().to_bits());
    }
}
