//! Determinism suite: bit-identical results across worker-thread counts.
//!
//! The engine schedules each global round's (group × client) work units on
//! a work-stealing queue, so *which* thread runs a client — and in what
//! order — varies freely with the parallelism degree. This suite pins the
//! process-wide thread count to 1, 2, and 8 in turn and asserts that the
//! full [`RunHistory`] (records, fault log, regroup log) and the final
//! model parameters are bit-for-bit identical in every configuration the
//! engine supports: clean, fault-injected, churned/self-healing, and
//! secure-aggregation runs.
//!
//! Set `GFL_SEED` (CI runs 1 and 2) to shift every seed in the suite and
//! shake out seed-sensitive nondeterminism.

use std::sync::Mutex;

use gfl_core::membership::RegroupPolicy;
use gfl_core::prelude::*;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_faults::{AdversaryPlan, ChurnPlan, FaultPlan, FaultPolicy};
use gfl_sim::Topology;

/// Thread counts every path must agree across.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// `set_default_parallelism` is process-global; tests in this binary run
/// concurrently, so every pin happens under this lock.
static THREAD_PIN: Mutex<()> = Mutex::new(());

/// CI seed shift: `GFL_SEED=n` offsets every seed in the suite.
fn seed_offset() -> u64 {
    std::env::var("GFL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Runs `f` once per thread count in [`THREAD_COUNTS`] and asserts every
/// result is bit-identical to the single-threaded one.
fn assert_bit_identical<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) {
    let _guard = THREAD_PIN.lock().unwrap_or_else(|e| e.into_inner());
    let mut baseline: Option<R> = None;
    for &threads in &THREAD_COUNTS {
        gfl_parallel::set_default_parallelism(threads);
        let result = f();
        match &baseline {
            None => baseline = Some(result),
            Some(b) => assert_eq!(
                *b, result,
                "run diverged at {threads} threads from the 1-thread baseline"
            ),
        }
    }
    gfl_parallel::set_default_parallelism(0);
}

/// Tiny two-edge federation shared by every determinism test.
fn world(
    seed: u64,
) -> (
    GroupFelConfig,
    gfl_nn::Network,
    ClientPartition,
    Topology,
    Vec<Group>,
    gfl_data::Dataset,
    gfl_data::Dataset,
) {
    let seed = seed + seed_offset();
    let data = SyntheticSpec::tiny().generate(600, seed);
    let (train, test) = data.split_holdout(5);
    let part = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.5, seed));
    let topo = Topology::even_split(2, part.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 2,
            max_cov: 1.0,
        },
        &topo,
        &part.label_matrix,
        seed,
    );
    let mut cfg = GroupFelConfig::tiny();
    cfg.seed = seed;
    (
        cfg,
        gfl_nn::zoo::tiny(4, 3),
        part,
        topo,
        groups,
        train,
        test,
    )
}

#[test]
fn clean_run_is_bit_identical_across_thread_counts() {
    let (cfg, model, part, _topo, groups, train, test) = world(31);
    assert_bit_identical(|| {
        let t = Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        );
        t.run_returning_params(&groups, &FedAvg, SamplingStrategy::ESRCov)
    });
}

#[test]
fn virtual_population_run_is_bit_identical_across_thread_counts() {
    // Virtual populations add two more thread-sensitive stages: the
    // chunked parallel population build (per-client summary statistics)
    // and the on-demand shard materialization inside each work unit. Both
    // must be invariant — the whole pipeline from `VirtualSpec` to final
    // parameters is rebuilt per thread count here, nothing is shared.
    let seed = 91 + seed_offset();
    assert_bit_identical(|| {
        let pop =
            gfl_data::VirtualPopulation::new(gfl_data::VirtualSpec::paper_vision(4_000, 0.1, seed));
        let sizes: Vec<usize> = (0..pop.num_clients()).map(|c| pop.client_size(c)).collect();
        let topo = Topology::even_split(4, sizes);
        let groups = form_groups_per_edge(
            &StreamGrouping { group_size: 8 },
            &topo,
            pop.label_matrix(),
            seed,
        );
        let test = pop.test_set(256);
        let mut cfg = GroupFelConfig::tiny();
        cfg.seed = seed;
        let hists: Vec<Vec<u32>> = (0..pop.num_clients())
            .map(|c| pop.label_matrix().client(c).to_vec())
            .collect();
        let t = Trainer::new_virtual(cfg, gfl_nn::zoo::vision_model(), pop, test);
        let (h, p) = t.run_returning_params(&groups, &FedAvg, SamplingStrategy::ESRCov);
        (h, p, groups, hists)
    });
}

#[test]
fn faulted_run_is_bit_identical_across_thread_counts() {
    // Crashes, straggler cuts, corrupt rejections, outages, and quorum
    // skips must all land on the same (t, k, client) coordinates — and in
    // the same event-log order — no matter how units are scheduled.
    let (cfg, model, part, topo, groups, train, test) = world(32);
    assert_bit_identical(|| {
        let t = Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        )
        .with_faults(FaultPlan::moderate(99), FaultPolicy::default(), &topo);
        let (h, p) = t.run_returning_params(&groups, &FedAvg, SamplingStrategy::ESRCov);
        assert!(
            !h.fault_events().is_empty(),
            "plan should inject faults for this test to mean anything"
        );
        (h, p)
    });
}

#[test]
fn churned_self_healing_run_is_bit_identical_across_thread_counts() {
    // The self-healing loop layers churn transitions and online regrouping
    // on top of training; membership, regroup log, and model must all
    // match across thread counts.
    let (cfg, model, part, topo, _groups, train, test) = world(33);
    let algo = CovGrouping {
        min_group_size: 2,
        max_cov: 1.0,
    };
    assert_bit_identical(|| {
        let t = Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        )
        .with_churn(
            ChurnPlan {
                horizon: cfg.global_rounds,
                ..ChurnPlan::moderate(cfg.seed)
            },
            RegroupPolicy::default(),
        );
        let (h, p, m) = t
            .run_self_healing(&algo, &topo, &FedAvg, SamplingStrategy::ESRCov)
            .expect("self-healing run failed");
        (h, p, m.groups)
    });
}

#[test]
fn traced_run_is_bit_identical_to_untraced_run() {
    // Tracing observes wall-clock time, which differs every run — but none
    // of it may leak into simulation state. A run with a collector attached
    // (and a trace sink written) must produce byte-identical history and
    // final parameters to the untraced run, at 1 and 8 threads alike.
    let (cfg, model, part, _topo, groups, train, test) = world(35);
    let make = || {
        Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        )
    };
    let _guard = THREAD_PIN.lock().unwrap_or_else(|e| e.into_inner());
    gfl_parallel::set_default_parallelism(1);
    let (base_h, base_p) = make().run_returning_params(&groups, &FedAvg, SamplingStrategy::ESRCov);
    let base_h_bytes = serde_json::to_string(&base_h).expect("serialize history");

    for threads in [1usize, 8] {
        gfl_parallel::set_default_parallelism(threads);
        let obs = gfl_obs::TraceCollector::new();
        let traced = make().with_observer(std::sync::Arc::clone(&obs));
        let (h, p) = traced.run_returning_params(&groups, &FedAvg, SamplingStrategy::ESRCov);
        let trace = obs.finish(threads);

        assert_eq!(
            base_h_bytes,
            serde_json::to_string(&h).expect("serialize history"),
            "traced history diverged at {threads} threads"
        );
        assert_eq!(base_h, h);
        assert_eq!(
            base_p, p,
            "traced final params diverged at {threads} threads"
        );
        // The trace itself must be well-formed: write out, read back.
        let jsonl = trace.to_jsonl();
        let back = gfl_obs::TraceReader::parse(&jsonl).expect("trace parses");
        assert_eq!(back.rounds.len(), cfg.global_rounds);
        assert_eq!(back.meta.threads, threads as u64);

        // Same contract for the streaming collector: run, history, and
        // params all unperturbed, and the bytes it streamed at round
        // barriers equal its own in-memory serialization.
        let stream_buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::<u8>::new()));
        struct Sink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl std::io::Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let obs = gfl_obs::TraceCollector::streaming_tee(
            Box::new(Sink(std::sync::Arc::clone(&stream_buf))),
            threads,
            gfl_obs::StreamConfig::default(),
        );
        let traced = make().with_observer(std::sync::Arc::clone(&obs));
        let (h, p) = traced.run_returning_params(&groups, &FedAvg, SamplingStrategy::ESRCov);
        let trace = obs.finish(threads);
        assert_eq!(
            base_h_bytes,
            serde_json::to_string(&h).expect("serialize history"),
            "streamed history diverged at {threads} threads"
        );
        assert_eq!(
            base_p, p,
            "streamed final params diverged at {threads} threads"
        );
        let streamed = String::from_utf8(stream_buf.lock().unwrap().clone()).unwrap();
        assert_eq!(
            streamed,
            trace.to_jsonl(),
            "streamed bytes diverged from the in-memory path at {threads} threads"
        );
    }
    gfl_parallel::set_default_parallelism(0);
}

#[test]
fn attacked_defended_run_is_bit_identical_across_thread_counts() {
    // Poisoned shards, amplified uploads, FLAME interceptions, the attack
    // log, and the ASR trajectory are all pure functions of (plan, t, k,
    // client) — none may move with the scheduler.
    let (cfg, model, part, _topo, _groups, train, test) = world(36);
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 4,
            max_cov: 10.0,
        },
        &Topology::even_split(2, part.sizes()),
        &part.label_matrix,
        cfg.seed,
    );
    let plan = AdversaryPlan {
        backdoor_fraction: 0.2,
        label_flip_fraction: 0.15,
        model_poison_fraction: 0.15,
        ..AdversaryPlan::moderate(cfg.seed)
    };
    assert_bit_identical(|| {
        let t = Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        )
        .with_adversary(plan.clone())
        .with_robust_agg(RobustAggRule::FlameFilter);
        let (h, p) = t.run_returning_params(&groups, &FedAvg, SamplingStrategy::ESRCov);
        assert!(
            h.attack_summary().injected() > 0,
            "plan should attack for this test to mean anything"
        );
        (h, p)
    });
}

#[test]
fn attacked_secure_aggregation_run_is_bit_identical_across_thread_counts() {
    // Attacks inside the masked domain: the poison is baked into the
    // update before masking, and the whole secure path must still agree
    // across thread counts.
    let (cfg, model, part, _topo, groups, train, test) = world(37);
    let mut cfg = cfg;
    cfg.secure_aggregation = true;
    let plan = AdversaryPlan {
        backdoor_fraction: 0.25,
        ..AdversaryPlan::moderate(cfg.seed)
    };
    assert_bit_identical(|| {
        let t = Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        )
        .with_adversary(plan.clone());
        let (h, p) = t.run_returning_params(&groups, &FedAvg, SamplingStrategy::Random);
        assert!(h.attack_summary().injected() > 0, "plan should attack");
        (h, p)
    });
}

#[test]
fn simd_tiers_are_bit_identical_across_thread_counts() {
    // Every SIMD dispatch tier this machine supports (scalar, SSE2, AVX2,
    // AVX-512F, NEON — whatever is present) implements the same canonical
    // 16-chain summation order, so forcing any tier must reproduce the
    // scalar run bit-for-bit, at every thread count. This is the whole-run
    // version of the kernel-level cross-tier tests in `gfl-tensor`, and
    // the in-process equivalent of running the suite under `GFL_SIMD=off`
    // vs `GFL_SIMD=auto` (which CI also does).
    let (cfg, model, part, _topo, groups, train, test) = world(38);
    let run = || {
        let t = Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        );
        t.run_returning_params(&groups, &FedAvg, SamplingStrategy::ESRCov)
    };
    let _guard = THREAD_PIN.lock().unwrap_or_else(|e| e.into_inner());
    let mut baseline: Option<(RunHistory, Vec<f32>)> = None;
    for tier in gfl_tensor::simd::supported_tiers() {
        let prev = gfl_tensor::simd::set_tier(tier);
        for &threads in &THREAD_COUNTS {
            gfl_parallel::set_default_parallelism(threads);
            let result = run();
            match &baseline {
                None => baseline = Some(result),
                Some(b) => assert_eq!(
                    *b,
                    result,
                    "run diverged on tier {} at {threads} threads",
                    tier.name()
                ),
            }
        }
        gfl_tensor::simd::set_tier(prev);
    }
    gfl_parallel::set_default_parallelism(0);
}

#[test]
fn secure_aggregation_run_is_bit_identical_across_thread_counts() {
    // The pairwise-masking protocol's mask generation is keyed by (seed,
    // t, k) and member ids only — never by scheduling — so the secure path
    // must agree across thread counts too.
    let (cfg, model, part, _topo, groups, train, test) = world(34);
    let mut cfg = cfg;
    cfg.secure_aggregation = true;
    assert_bit_identical(|| {
        let t = Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        );
        t.run_returning_params(&groups, &FedAvg, SamplingStrategy::Random)
    });
}
