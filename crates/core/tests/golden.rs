//! Golden-trace regression tests: canonical `RunHistory` snapshots.
//!
//! Each scenario (clean, faulted, churned/self-healing, secure, attacked)
//! runs a
//! small fixed federation at two fixed seeds and compares the serialized
//! `RunHistory` — evaluation records, fault log, and regroup log — field
//! by field against a committed JSON snapshot under `tests/golden/`. Any
//! behavioral drift in sampling, training, aggregation, fault injection,
//! or healing shows up as a precise first-divergence diff.
//!
//! ## Regenerating snapshots (blessing)
//!
//! When a change *intentionally* alters trajectories, regenerate with:
//!
//! ```text
//! GFL_BLESS=1 cargo test -p gfl-core --test golden
//! ```
//!
//! then inspect `git diff crates/core/tests/golden/` and commit the new
//! snapshots together with the change that explains them.
//!
//! Unlike the determinism suite, these tests deliberately **ignore**
//! `GFL_SEED`: snapshots are pinned to fixed seeds so the same goldens
//! hold in every CI shard. Thread count is also irrelevant — the
//! determinism suite proves trajectories are thread-count invariant.

use gfl_core::membership::RegroupPolicy;
use gfl_core::prelude::*;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_faults::{AdversaryPlan, ChurnPlan, FaultPlan, FaultPolicy};
use gfl_obs::diff::first_divergence;
use gfl_sim::Topology;
use serde::Value;

/// Fixed seeds every scenario is snapshotted at.
const GOLDEN_SEEDS: [u64; 2] = [1, 2];

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Tiny two-edge federation, mirroring the determinism suite's world but
/// with no seed shifting.
fn world(
    seed: u64,
) -> (
    GroupFelConfig,
    gfl_nn::Network,
    ClientPartition,
    Topology,
    Vec<Group>,
    gfl_data::Dataset,
    gfl_data::Dataset,
) {
    let data = SyntheticSpec::tiny().generate(600, seed);
    let (train, test) = data.split_holdout(5);
    let part = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.5, seed));
    let topo = Topology::even_split(2, part.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 2,
            max_cov: 1.0,
        },
        &topo,
        &part.label_matrix,
        seed,
    );
    let mut cfg = GroupFelConfig::tiny();
    cfg.seed = seed;
    (
        cfg,
        gfl_nn::zoo::tiny(4, 3),
        part,
        topo,
        groups,
        train,
        test,
    )
}

fn run_scenario(name: &str, seed: u64) -> RunHistory {
    run_scenario_observed(name, seed, None)
}

/// Like [`run_scenario`], with an optional trace collector attached to the
/// trainer — used by the streaming byte-identity test to replay the golden
/// scenarios under observation.
/// Vision-shaped virtual federation (paper §7.2 client shape: 20–200
/// rows, 10 classes, 64-dim features) at an arbitrary population size.
/// Groups are stream-formed — the only formation that stays sub-second at
/// 10⁶ clients — and only `cfg.sampled_groups` of them train per round.
fn virtual_world(
    clients: usize,
    seed: u64,
) -> (
    GroupFelConfig,
    gfl_nn::Network,
    gfl_data::VirtualPopulation,
    Vec<Group>,
    gfl_data::Dataset,
) {
    let pop =
        gfl_data::VirtualPopulation::new(gfl_data::VirtualSpec::paper_vision(clients, 0.1, seed));
    let sizes: Vec<usize> = (0..pop.num_clients()).map(|c| pop.client_size(c)).collect();
    let topo = Topology::even_split(8, sizes);
    let groups = form_groups_per_edge(
        &StreamGrouping { group_size: 8 },
        &topo,
        pop.label_matrix(),
        seed,
    );
    let test = pop.test_set(512);
    let mut cfg = GroupFelConfig::tiny();
    cfg.seed = seed;
    cfg.global_rounds = 3;
    (cfg, gfl_nn::zoo::vision_model(), pop, groups, test)
}

fn run_scenario_observed(
    name: &str,
    seed: u64,
    obs: Option<std::sync::Arc<gfl_obs::TraceCollector>>,
) -> RunHistory {
    let attach = |t: Trainer| match &obs {
        Some(o) => t.with_observer(std::sync::Arc::clone(o)),
        None => t,
    };
    // Virtual scenarios derive their population instead of materializing
    // one; they never touch the eager world.
    let virtual_clients = match name {
        "virtual" => Some(20_000),
        "virtual-1m" => Some(1_000_000),
        _ => None,
    };
    if let Some(clients) = virtual_clients {
        let (cfg, model, pop, groups, test) = virtual_world(clients, seed);
        let t = attach(Trainer::new_virtual(cfg, model, pop, test));
        return t.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
    }
    let (cfg, model, part, topo, groups, train, test) = world(seed);
    match name {
        "clean" => {
            let t = attach(Trainer::new(cfg, model, train, part, test));
            t.run(&groups, &FedAvg, SamplingStrategy::ESRCov)
        }
        "faulted" => {
            let t = attach(Trainer::new(cfg, model, train, part, test).with_faults(
                FaultPlan::moderate(99 + seed),
                FaultPolicy::default(),
                &topo,
            ));
            t.run(&groups, &FedAvg, SamplingStrategy::ESRCov)
        }
        "churned" => {
            let horizon = cfg.global_rounds;
            let churn_seed = cfg.seed;
            let t = attach(Trainer::new(cfg, model, train, part, test).with_churn(
                ChurnPlan {
                    horizon,
                    ..ChurnPlan::moderate(churn_seed)
                },
                RegroupPolicy::default(),
            ));
            let algo = CovGrouping {
                min_group_size: 2,
                max_cov: 1.0,
            };
            let (h, _, _) = t
                .run_self_healing(&algo, &topo, &FedAvg, SamplingStrategy::ESRCov)
                .expect("self-healing run failed");
            h
        }
        "secure" => {
            let mut cfg = cfg;
            cfg.secure_aggregation = true;
            let t = attach(Trainer::new(cfg, model, train, part, test));
            t.run(&groups, &FedAvg, SamplingStrategy::Random)
        }
        "attacked" => {
            // Attacked + defended: a mixed campaign against FLAME-filtered
            // aggregation. Groups are re-formed larger so the filter's
            // ≥3-live-member floor is met and interceptions actually land
            // in the snapshot.
            let groups = form_groups_per_edge(
                &CovGrouping {
                    min_group_size: 4,
                    max_cov: 10.0,
                },
                &topo,
                &part.label_matrix,
                seed,
            );
            let plan = AdversaryPlan {
                backdoor_fraction: 0.2,
                label_flip_fraction: 0.15,
                model_poison_fraction: 0.15,
                ..AdversaryPlan::moderate(77 + seed)
            };
            let t = attach(
                Trainer::new(cfg, model, train, part, test)
                    .with_adversary(plan)
                    .with_robust_agg(RobustAggRule::FlameFilter),
            );
            let h = t.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
            assert!(
                h.attack_summary().injected() > 0,
                "attacked snapshot must contain injections"
            );
            h
        }
        other => panic!("unknown scenario {other}"),
    }
}

fn check_golden(scenario: &str, seed: u64) {
    let history = run_scenario(scenario, seed);
    let rendered = serde_json::to_string_pretty(&history).expect("serialize history");
    let file = golden_dir().join(format!("{scenario}_seed{seed}.json"));

    if std::env::var("GFL_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&file, rendered + "\n").expect("write golden snapshot");
        return;
    }

    let expected_text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with \
             GFL_BLESS=1 cargo test -p gfl-core --test golden",
            file.display()
        )
    });
    let expected: Value = serde_json::from_str(&expected_text).expect("parse golden snapshot");
    let actual: Value = serde_json::from_str(&rendered).expect("parse current history");
    if let Some(divergence) = first_divergence("history", &expected, &actual) {
        panic!(
            "golden trace {scenario} (seed {seed}) diverged.\n  first divergence: {divergence}\n\
             If this change is intentional, re-bless with \
             GFL_BLESS=1 cargo test -p gfl-core --test golden and commit the diff."
        );
    }
}

#[test]
fn golden_clean_histories_match() {
    for seed in GOLDEN_SEEDS {
        check_golden("clean", seed);
    }
}

#[test]
fn golden_faulted_histories_match() {
    for seed in GOLDEN_SEEDS {
        check_golden("faulted", seed);
    }
}

#[test]
fn golden_churned_histories_match() {
    for seed in GOLDEN_SEEDS {
        check_golden("churned", seed);
    }
}

#[test]
fn golden_secure_histories_match() {
    for seed in GOLDEN_SEEDS {
        check_golden("secure", seed);
    }
}

#[test]
fn golden_attacked_histories_match() {
    for seed in GOLDEN_SEEDS {
        check_golden("attacked", seed);
    }
}

#[test]
fn golden_virtual_histories_match() {
    // The paper_vision-shaped virtual scenario at a CI-sized population.
    // The same trajectory shape at 10⁶ clients is pinned by
    // `golden_virtual_million_matches` below (GFL_SCALE-gated).
    for seed in GOLDEN_SEEDS {
        check_golden("virtual", seed);
    }
}

#[test]
fn golden_virtual_million_matches() {
    // The acceptance-criteria run: 10⁶ paper_vision-shaped virtual clients,
    // a small sampled-group count, snapshot-pinned. ~30 s in debug builds,
    // ~1 s in release, so it only runs when the scale smoke asks for it:
    // `GFL_SCALE=1 cargo test --release -p gfl-core --test golden`.
    if std::env::var("GFL_SCALE").ok().as_deref() != Some("1") {
        return;
    }
    check_golden("virtual-1m", GOLDEN_SEEDS[0]);
}

#[test]
fn divergence_reporting_finds_the_first_differing_field() {
    let a: Value = serde_json::from_str(r#"{"x":[{"y":1.5},{"y":2.0}],"z":"s"}"#).unwrap();
    let b: Value = serde_json::from_str(r#"{"x":[{"y":1.5},{"y":2.5}],"z":"s"}"#).unwrap();
    let d = first_divergence("h", &a, &b).expect("must diverge");
    assert!(d.starts_with("h.x[1].y:"), "got {d}");
    assert_eq!(first_divergence("h", &a, &a), None);
}

/// `Write` target shared between the streaming sink and the assertion.
#[derive(Clone, Default)]
struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn streamed_golden_scenarios_are_byte_identical_to_in_memory_serialization() {
    // The streaming collector must be a pure serialization change: for
    // every golden scenario, at 1 and 8 threads, the bytes it streams at
    // round barriers must equal the in-memory path's `to_jsonl()` of the
    // very same run (tee mode retains spans for the comparison), and the
    // run's history must still match its golden snapshot — observation
    // changed nothing.
    for threads in [1usize, 8] {
        gfl_parallel::set_default_parallelism(threads);
        for scenario in ["clean", "faulted", "churned", "secure"] {
            let buf = SharedBuf::default();
            let obs = gfl_obs::TraceCollector::streaming_tee(
                Box::new(buf.clone()),
                threads,
                gfl_obs::StreamConfig::default(),
            );
            let history =
                run_scenario_observed(scenario, GOLDEN_SEEDS[0], Some(std::sync::Arc::clone(&obs)));
            let trace = obs.finish(threads);
            let streamed = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
            assert_eq!(
                streamed,
                trace.to_jsonl(),
                "{scenario} @ {threads} threads: streamed bytes diverged from in-memory path"
            );
            let back = gfl_obs::TraceReader::parse(&streamed).expect("streamed trace parses");
            assert!(back.summary.is_some(), "{scenario}: summary line missing");

            let rendered = serde_json::to_string_pretty(&history).expect("serialize history");
            let expected = std::fs::read_to_string(
                golden_dir().join(format!("{scenario}_seed{}.json", GOLDEN_SEEDS[0])),
            )
            .expect("golden snapshot present");
            assert_eq!(
                rendered.trim(),
                expected.trim(),
                "{scenario} @ {threads} threads: streaming observation perturbed the run"
            );
        }
    }
    gfl_parallel::set_default_parallelism(0);
}
