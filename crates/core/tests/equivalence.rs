//! Virtual ≡ materialized equivalence suite.
//!
//! The virtual-population tentpole only earns its keep if it is *not an
//! approximation*: a [`Trainer`] over a [`VirtualPopulation`] must produce
//! the same bits as a trainer over the eagerly materialized twin —
//! [`VirtualPopulation::materialize`] lowers the population to a
//! `(Dataset, ClientPartition)` with contiguous per-client row ranges, so
//! client `c`'s row `i` is the same scalar values through either path.
//!
//! Every golden scenario the engine supports is pinned here, at seeds
//! 1–3 (shifted by `GFL_SEED` in CI): clean lockstep, injected faults,
//! secure aggregation, a live poisoning campaign, churn with
//! self-healing regrouping, the semi-async runtime, and semi-async
//! composed with churn. In each case the full [`RunHistory`] (losses,
//! accuracies, fault/attack/regroup events, ASR records) and the final
//! parameter vector must match exactly — `assert_eq!` on floats, no
//! tolerances.

use gfl_core::membership::RegroupPolicy;
use gfl_core::prelude::*;
use gfl_data::{ClientPartition, Dataset, VirtualPopulation, VirtualSpec};
use gfl_faults::{AdversaryPlan, ChurnPlan, FaultPlan, FaultPolicy};
use gfl_sim::Topology;

/// CI seed shift: `GFL_SEED=n` offsets every seed in the suite.
fn seed_offset() -> u64 {
    std::env::var("GFL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// A virtual population and its eagerly materialized twin, sharing one
/// test set, topology, and formed partition.
struct Twins {
    cfg: GroupFelConfig,
    model: gfl_nn::Network,
    pop: VirtualPopulation,
    train: Dataset,
    part: ClientPartition,
    test: Dataset,
    topo: Topology,
    groups: Vec<Group>,
}

fn algo() -> CovGrouping {
    CovGrouping {
        min_group_size: 2,
        max_cov: 1.0,
    }
}

fn twins(seed: u64) -> Twins {
    let seed = seed + seed_offset();
    let pop = VirtualPopulation::new(VirtualSpec::tiny(24, 0.5, seed));
    let (train, part) = pop.materialize();
    assert_eq!(&part.label_matrix, pop.label_matrix());
    let test = pop.test_set(120);
    let topo = Topology::even_split(2, part.sizes());
    let groups = form_groups_per_edge(&algo(), &topo, &part.label_matrix, seed);
    let mut cfg = GroupFelConfig::tiny();
    cfg.seed = seed;
    Twins {
        cfg,
        model: gfl_nn::zoo::tiny(4, 3),
        pop,
        train,
        part,
        test,
        topo,
        groups,
    }
}

impl Twins {
    fn eager(&self) -> Trainer {
        Trainer::new(
            self.cfg.clone(),
            self.model.clone(),
            self.train.clone(),
            self.part.clone(),
            self.test.clone(),
        )
    }

    fn virt(&self) -> Trainer {
        Trainer::new_virtual(
            self.cfg.clone(),
            self.model.clone(),
            self.pop.clone(),
            self.test.clone(),
        )
    }
}

/// Run both trainers through `f` and demand bitwise-equal outcomes.
fn assert_equivalent<R: PartialEq + std::fmt::Debug>(
    seed: u64,
    scenario: &str,
    t: &Twins,
    f: impl Fn(Trainer) -> R,
) -> R {
    let eager = f(t.eager());
    let virt = f(t.virt());
    assert_eq!(
        eager, virt,
        "seed {seed}: {scenario} diverged between eager and virtual"
    );
    eager
}

#[test]
fn clean_lockstep_is_bitwise_equivalent() {
    for seed in 1..=3u64 {
        let t = twins(seed);
        let groups = t.groups.clone();
        let (h, p) = assert_equivalent(seed, "clean", &t, |tr| {
            tr.run_returning_params(&groups, &FedAvg, SamplingStrategy::ESRCov)
        });
        assert!(p.iter().all(|w| w.is_finite()));
        // Serialized traces must match byte for byte too — nothing about
        // virtuality may leak into the recorded history shape.
        let h_virt = t.virt().run(&t.groups, &FedAvg, SamplingStrategy::ESRCov);
        assert_eq!(
            serde_json::to_string(&h).unwrap(),
            serde_json::to_string(&h_virt).unwrap(),
            "seed {seed}: histories serialize differently"
        );
    }
}

#[test]
fn every_sampling_strategy_is_equivalent() {
    // Group-sampling probabilities come from the label matrix, which both
    // representations share verbatim — but the per-round draws consume the
    // engine RNG, so a mismatch anywhere upstream would surface here.
    let t = twins(1);
    let groups = t.groups.clone();
    for sampling in [
        SamplingStrategy::Random,
        SamplingStrategy::RCov,
        SamplingStrategy::SRCov,
        SamplingStrategy::ESRCov,
    ] {
        let g = groups.clone();
        assert_equivalent(1, "sampling strategy", &t, move |tr| {
            tr.run_returning_params(&g, &FedAvg, sampling)
        });
    }
}

#[test]
fn faulted_runs_are_bitwise_equivalent() {
    for seed in 1..=3u64 {
        let t = twins(seed);
        let groups = t.groups.clone();
        let topo = t.topo.clone();
        let (h, _) = assert_equivalent(seed, "faulted", &t, |tr| {
            tr.with_faults(FaultPlan::moderate(5), FaultPolicy::default(), &topo)
                .run_returning_params(&groups, &FedAvg, SamplingStrategy::ESRCov)
        });
        assert!(
            !h.fault_events().is_empty(),
            "seed {seed}: a moderate plan should inject something"
        );
    }
}

#[test]
fn secure_aggregation_is_bitwise_equivalent() {
    for seed in 1..=3u64 {
        let mut t = twins(seed);
        t.cfg.secure_aggregation = true;
        let groups = t.groups.clone();
        assert_equivalent(seed, "secure", &t, |tr| {
            tr.run_returning_params(&groups, &FedAvg, SamplingStrategy::ESRCov)
        });
    }
}

#[test]
fn poisoning_campaigns_are_bitwise_equivalent() {
    // The materialized path prebuilds poisoned shards in `with_adversary`;
    // the virtual path re-derives rows and applies the campaign on the
    // fly. Same picks, same rows, same ASR records — or the on-demand
    // poisoning is a different attack than the one we benchmarked.
    for seed in 1..=3u64 {
        let t = twins(seed);
        let groups = t.groups.clone();
        let plan = AdversaryPlan {
            backdoor_fraction: 0.25,
            label_flip_fraction: 0.2,
            model_poison_fraction: 0.2,
            ..AdversaryPlan::moderate(t.cfg.seed)
        };
        let p = plan.clone();
        let (h, _) = assert_equivalent(seed, "attacked", &t, move |tr| {
            tr.with_adversary(p.clone()).run_returning_params(
                &groups,
                &FedAvg,
                SamplingStrategy::ESRCov,
            )
        });
        assert!(
            !h.attack_events().is_empty(),
            "seed {seed}: a heavy campaign should land at least one attack"
        );
        assert!(
            !h.asr_records().is_empty(),
            "seed {seed}: backdoor clients must trigger ASR evaluation"
        );
    }
}

#[test]
fn churned_self_healing_is_bitwise_equivalent() {
    for seed in 1..=3u64 {
        let t = twins(seed);
        let topo = t.topo.clone();
        let plan = ChurnPlan {
            seed: t.cfg.seed ^ 0xC0FF,
            horizon: 4,
            departure_fraction: 0.4,
            arrival_fraction: 0.3,
            flap_prob: 0.1,
        };
        let p = plan.clone();
        let (h, _, membership) = assert_equivalent(seed, "churned", &t, move |tr| {
            tr.with_churn(p.clone(), RegroupPolicy::default())
                .run_self_healing(&algo(), &topo, &FedAvg, SamplingStrategy::ESRCov)
                .unwrap()
        });
        assert!(
            !h.regroup_events().is_empty(),
            "seed {seed}: churn this heavy should regroup somebody"
        );
        assert!(!membership.groups.is_empty());
    }
}

#[test]
fn semi_async_runtime_is_bitwise_equivalent() {
    for seed in 1..=3u64 {
        let t = twins(seed);
        let groups = t.groups.clone();
        let topo = t.topo.clone();
        let (h, _, report) = assert_equivalent(seed, "semi-async", &t, move |tr| {
            tr.with_faults(
                FaultPlan {
                    straggler_fraction: 0.45,
                    straggler_factor: 8.0,
                    ..FaultPlan::none()
                },
                FaultPolicy {
                    quorum_fraction: 0.7,
                    deadline_factor: 1.5,
                    ..FaultPolicy::default()
                },
                &topo,
            )
            .run_semi_async(
                &groups,
                &FedAvg,
                SamplingStrategy::ESRCov,
                &AsyncConfig::default(),
            )
        });
        assert!(!report.rounds.is_empty());
        assert!(h.records().iter().all(|r| r.loss.is_finite()));
    }
}

#[test]
fn semi_async_with_churn_is_bitwise_equivalent() {
    for seed in 1..=3u64 {
        let t = twins(seed);
        let topo = t.topo.clone();
        let plan = ChurnPlan {
            seed: t.cfg.seed ^ 0xAB1E,
            horizon: 4,
            departure_fraction: 0.4,
            arrival_fraction: 0.3,
            flap_prob: 0.1,
        };
        let p = plan.clone();
        let (h, _, report, membership) =
            assert_equivalent(seed, "semi-async + churn", &t, move |tr| {
                tr.with_faults(
                    FaultPlan {
                        straggler_fraction: 0.4,
                        straggler_factor: 8.0,
                        ..FaultPlan::none()
                    },
                    FaultPolicy {
                        quorum_fraction: 0.7,
                        deadline_factor: 1.5,
                        ..FaultPolicy::default()
                    },
                    &topo,
                )
                .with_churn(p.clone(), RegroupPolicy::default())
                .run_semi_async_self_healing(
                    &algo(),
                    &topo,
                    &FedAvg,
                    SamplingStrategy::ESRCov,
                    &AsyncConfig::default(),
                )
                .unwrap()
            });
        assert!(!report.rounds.is_empty());
        assert!(
            !h.regroup_events().is_empty(),
            "seed {seed}: churn should produce membership transitions"
        );
        let _ = membership;
    }
}
