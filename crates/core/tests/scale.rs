//! Memory-bound proof for virtual populations (ISSUE 10, satellite 3).
//!
//! The tentpole claim is that a virtual federation's working set is
//! O(sampled clients), not O(population): feature rows exist only for the
//! clients a round actually trains, inside pooled buffers. This binary
//! installs a peak-tracking counting allocator and runs the full pipeline
//! — population build, stream formation, training — asserting the peak
//! heap stays a small fraction of what eagerly materializing the
//! population's features would require. The bound is self-calibrating:
//! it is derived from `total_samples × feature_dim`, so growing the
//! population makes the assertion *stronger*, not stale.
//!
//! The unconditional test runs 10⁴ paper_vision-shaped clients (~280 MB
//! if materialized). `GFL_SCALE=1` adds the acceptance-criteria run: 10⁶
//! clients (~28 GB if materialized) — wired into CI's scale-smoke job in
//! release mode.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use gfl_core::prelude::*;
use gfl_data::{VirtualPopulation, VirtualSpec};
use gfl_sim::Topology;

/// System allocator wrapper tracking live bytes and the high-water mark.
struct PeakAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            note_alloc(new_size - layout.size());
        } else {
            LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: PeakAlloc = PeakAlloc;

/// Runs the full virtual pipeline at `clients` and returns
/// `(peak heap bytes over the run, bytes a materialized twin's feature
/// matrix alone would occupy)`.
fn peak_bytes_for(clients: usize, seed: u64) -> (usize, usize) {
    // Baseline from the current live count, not zero: the harness itself
    // owns memory.
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    let before = LIVE.load(Ordering::Relaxed);

    let pop = VirtualPopulation::new(VirtualSpec::paper_vision(clients, 0.1, seed));
    let dim = pop.spec().data.feature_dim;
    let materialized_floor = pop.total_samples() * dim * std::mem::size_of::<gfl_tensor::Scalar>();

    let sizes: Vec<usize> = (0..pop.num_clients()).map(|c| pop.client_size(c)).collect();
    let topo = Topology::even_split(8, sizes);
    let groups = form_groups_per_edge(
        &StreamGrouping { group_size: 8 },
        &topo,
        pop.label_matrix(),
        seed,
    );
    assert!(groups.len() >= clients / 16, "stream formation collapsed");
    let test = pop.test_set(512);
    let mut cfg = GroupFelConfig::tiny();
    cfg.seed = seed;
    cfg.global_rounds = 3;
    let t = Trainer::new_virtual(cfg, gfl_nn::zoo::vision_model(), pop, test);
    let h = t.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
    assert_eq!(h.records().len(), 3);
    drop(t);

    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(before);
    (peak, materialized_floor)
}

#[test]
fn ten_thousand_client_run_is_o_sampled_memory() {
    let (peak, floor) = peak_bytes_for(10_000, 5);
    eprintln!(
        "10^4 clients: peak {:.1} MiB, materialized floor {:.1} MiB",
        peak as f64 / (1 << 20) as f64,
        floor as f64 / (1 << 20) as f64
    );
    assert!(
        peak < floor / 4,
        "peak heap {peak} B is not clearly below the {floor} B a \
         materialized population would need"
    );
    // Absolute backstop so the relative bound cannot rot silently.
    assert!(peak < 96 << 20, "peak heap {peak} B exceeds 96 MiB");
}

#[test]
fn million_client_run_is_o_sampled_memory() {
    // Acceptance criteria: 10⁶ paper_vision-shaped clients on one machine
    // with memory O(sampled). ~28 GB if materialized; the virtual pipeline
    // must stay under 1.5 GiB (population summaries + groups + pools).
    // Debug builds take ~40 s here, so the scale-smoke CI job runs this
    // in release via GFL_SCALE=1.
    if std::env::var("GFL_SCALE").ok().as_deref() != Some("1") {
        return;
    }
    let (peak, floor) = peak_bytes_for(1_000_000, 5);
    eprintln!(
        "10^6 clients: peak {:.1} MiB, materialized floor {:.1} MiB",
        peak as f64 / (1 << 20) as f64,
        floor as f64 / (1 << 20) as f64
    );
    assert!(peak < floor / 16);
    assert!(peak < 1536 << 20, "peak heap {peak} B exceeds 1.5 GiB");
}
