//! Semi-async runtime suite.
//!
//! The load-bearing property is the **degenerate limit**: with a full
//! quorum (`quorum_fraction = 1.0`), disabled deadlines, and a clean
//! fault plan, the semi-async engine must reproduce the lockstep
//! [`RunHistory`] and final model **bit for bit** — at every thread
//! count, and across a checkpoint/resume split. Everything the runtime
//! adds (quorum closes, staleness, busy edges) must therefore be exactly
//! zero-cost when its knobs are neutral.
//!
//! Set `GFL_SEED` (CI runs 1–3) to shift every seed in the suite.

use std::sync::Mutex;

use gfl_core::checkpoint::Checkpoint;
use gfl_core::prelude::*;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_faults::{FaultEvent, FaultPlan, FaultPolicy};
use gfl_sim::Topology;

/// `set_default_parallelism` is process-global; pins happen under a lock.
static THREAD_PIN: Mutex<()> = Mutex::new(());

fn seed_offset() -> u64 {
    std::env::var("GFL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn world(
    seed: u64,
) -> (
    GroupFelConfig,
    gfl_nn::Network,
    ClientPartition,
    Topology,
    Vec<Group>,
    gfl_data::Dataset,
    gfl_data::Dataset,
) {
    let seed = seed + seed_offset();
    let data = SyntheticSpec::tiny().generate(600, seed);
    let (train, test) = data.split_holdout(5);
    let part = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.5, seed));
    let topo = Topology::even_split(2, part.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 2,
            max_cov: 1.0,
        },
        &topo,
        &part.label_matrix,
        seed,
    );
    let mut cfg = GroupFelConfig::tiny();
    cfg.seed = seed;
    (
        cfg,
        gfl_nn::zoo::tiny(4, 3),
        part,
        topo,
        groups,
        train,
        test,
    )
}

/// The degenerate-limit policy: wait for every report, never cut.
fn lockstep_limit_policy() -> FaultPolicy {
    FaultPolicy {
        quorum_fraction: 1.0,
        deadline_factor: 0.0,
        ..FaultPolicy::default()
    }
}

#[test]
fn degenerate_limit_reproduces_lockstep_bit_for_bit() {
    // Full quorum + no deadline + clean plan ⇒ identical RunHistory and
    // identical final parameters, with and without fault state attached.
    for seed in [41u64, 42, 43] {
        let (cfg, model, part, topo, groups, train, test) = world(seed);
        let sync = Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        );
        let (h_sync, p_sync) =
            sync.run_returning_params(&groups, &FedAvg, SamplingStrategy::ESRCov);

        // Plain semi-async (no fault state): defaults to the limit.
        let (h_plain, p_plain, rep_plain) = Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        )
        .run_semi_async(
            &groups,
            &FedAvg,
            SamplingStrategy::ESRCov,
            &AsyncConfig::default(),
        );
        assert_eq!(
            h_plain, h_sync,
            "seed {seed}: plain semi-async history diverged"
        );
        assert_eq!(
            p_plain, p_sync,
            "seed {seed}: plain semi-async params diverged"
        );
        assert!(h_plain.timed_events().is_empty());

        // Semi-async with a clean plan and the limit policy attached.
        let (h_lim, p_lim, rep_lim) = Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        )
        .with_faults(FaultPlan::none(), lockstep_limit_policy(), &topo)
        .run_semi_async(
            &groups,
            &FedAvg,
            SamplingStrategy::ESRCov,
            &AsyncConfig::default(),
        );
        assert_eq!(h_lim, h_sync, "seed {seed}: limit-policy history diverged");
        assert_eq!(p_lim, p_sync, "seed {seed}: limit-policy params diverged");

        // The emulated clock advanced monotonically either way.
        for rep in [&rep_plain, &rep_lim] {
            assert_eq!(rep.rounds.len(), cfg.global_rounds);
            let mut prev = 0.0;
            for r in &rep.rounds {
                assert!(r.clock_s > prev, "clock must advance every round");
                prev = r.clock_s;
            }
            assert_eq!(rep.total_cut_reports(), 0);
        }
    }
}

#[test]
fn semi_async_is_bit_identical_across_thread_counts() {
    let (cfg, model, part, topo, groups, train, test) = world(44);
    let _guard = THREAD_PIN.lock().unwrap_or_else(|e| e.into_inner());
    let mut baseline = None;
    for threads in [1usize, 8] {
        gfl_parallel::set_default_parallelism(threads);
        // A straggler-heavy plan with a partial quorum, so cuts and timed
        // events actually fire — the hard case for thread independence.
        let t = Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        )
        .with_faults(
            FaultPlan {
                straggler_fraction: 0.45,
                straggler_factor: 8.0,
                ..FaultPlan::none()
            },
            FaultPolicy {
                quorum_fraction: 0.7,
                deadline_factor: 1.5,
                ..FaultPolicy::default()
            },
            &topo,
        );
        let result = t.run_semi_async(
            &groups,
            &FedAvg,
            SamplingStrategy::ESRCov,
            &AsyncConfig::default(),
        );
        match &baseline {
            None => {
                assert!(
                    !result.0.timed_events().is_empty(),
                    "the plan should produce timed events for this test to bite"
                );
                baseline = Some(result);
            }
            Some(b) => assert_eq!(*b, result, "semi-async run diverged at {threads} threads"),
        }
    }
    gfl_parallel::set_default_parallelism(0);
}

#[test]
fn semi_async_checkpoint_resume_is_bit_identical() {
    // 6 rounds straight vs 3 → checkpoint (JSON round-trip, scheduler
    // state included) → 3 more: history, params, report, and scheduler
    // must all be exactly equal.
    let (mut cfg, model, part, topo, groups, train, test) = world(45);
    cfg.global_rounds = 6;
    let plan = FaultPlan {
        straggler_fraction: 0.45,
        straggler_factor: 8.0,
        ..FaultPlan::none()
    };
    let policy = FaultPolicy {
        quorum_fraction: 0.7,
        deadline_factor: 1.5,
        ..FaultPolicy::default()
    };
    let acfg = AsyncConfig {
        staleness: StalenessPolicy::Weighted { decay: 1.0 },
        cloud_deadline_factor: 1.2,
    };
    let trainer =
        Trainer::new(cfg.clone(), model, train, part, test).with_faults(plan, policy, &topo);
    let covs: Vec<f32> = groups
        .iter()
        .map(|g| group_cov(&trainer.partition().label_matrix, g))
        .collect();
    let probs = SamplingStrategy::ESRCov.probabilities(&covs);

    let run = |split: Option<usize>| {
        let mut params = trainer
            .model()
            .init_params(&mut gfl_tensor::init::rng(cfg.seed));
        let mut ledger = trainer.ledger_for(&FedAvg);
        let mut history = RunHistory::default();
        let mut sched = SchedulerState::new();
        let mut report = AsyncReport::default();
        match split {
            None => trainer.run_semi_async_resumable(
                &groups,
                &FedAvg,
                &probs,
                &acfg,
                &mut params,
                &mut ledger,
                &mut history,
                &mut sched,
                &mut report,
                0,
                6,
            ),
            Some(at) => {
                trainer.run_semi_async_resumable(
                    &groups,
                    &FedAvg,
                    &probs,
                    &acfg,
                    &mut params,
                    &mut ledger,
                    &mut history,
                    &mut sched,
                    &mut report,
                    0,
                    at,
                );
                // Round-trip everything resumable through checkpoint JSON.
                let cp = Checkpoint::new(params, at, history, cfg.clone(), ledger.total())
                    .with_scheduler(sched);
                let restored = Checkpoint::from_json(&cp.to_json()).unwrap();
                params = restored.params;
                history = restored.history;
                sched = restored.scheduler.unwrap();
                trainer.run_semi_async_resumable(
                    &groups,
                    &FedAvg,
                    &probs,
                    &acfg,
                    &mut params,
                    &mut ledger,
                    &mut history,
                    &mut sched,
                    &mut report,
                    at,
                    6 - at,
                );
            }
        }
        (params, history, sched, report.rounds.len())
    };

    let straight = run(None);
    let resumed = run(Some(3));
    assert_eq!(straight.0, resumed.0, "params diverged across resume");
    assert_eq!(straight.1, resumed.1, "history diverged across resume");
    assert_eq!(straight.2, resumed.2, "scheduler diverged across resume");
    assert_eq!(straight.3, resumed.3);
}

#[test]
fn partial_quorum_cuts_stragglers_as_timed_events() {
    let (cfg, model, part, topo, groups, train, test) = world(46);
    let trainer = Trainer::new(cfg, model, train, part, test).with_faults(
        FaultPlan {
            straggler_fraction: 0.4,
            straggler_factor: 8.0,
            ..FaultPlan::none()
        },
        FaultPolicy {
            quorum_fraction: 0.6,
            deadline_factor: 1.5,
            ..FaultPolicy::default()
        },
        &topo,
    );
    let (history, _, report) = trainer.run_semi_async(
        &groups,
        &FedAvg,
        SamplingStrategy::ESRCov,
        &AsyncConfig::default(),
    );
    assert!(report.total_cut_reports() > 0, "stragglers should get cut");
    let closes = history
        .timed_events()
        .iter()
        .filter(|e| matches!(e, TimedEvent::GroupRoundClosed { .. }))
        .count();
    assert!(closes > 0, "cut-bearing closes should be logged");
    let cuts = history
        .fault_events()
        .iter()
        .filter(|e| matches!(e, FaultEvent::StragglerCut { .. }))
        .count();
    assert_eq!(
        cuts,
        report.total_cut_reports(),
        "every timed cut lands in the fault log exactly once"
    );
}

#[test]
fn cloud_deadline_strands_stale_results_per_policy() {
    // A tight cloud deadline with stragglers (and edge deadlines
    // disabled, so straggling groups genuinely run long) strands slow
    // groups' uploads. DropStale discards them; Weighted folds them into
    // a later round. The factor is kept moderate (4×) and the horizon
    // long enough that a parked upload can actually mature.
    let (mut cfg, model, part, topo, groups, train, test) = world(47);
    cfg.global_rounds = 12;
    let plan = FaultPlan {
        straggler_fraction: 0.45,
        straggler_factor: 4.0,
        ..FaultPlan::none()
    };
    let policy = FaultPolicy {
        quorum_fraction: 1.0,
        deadline_factor: 0.0,
        ..FaultPolicy::default()
    };
    let mk = || {
        Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        )
        .with_faults(plan.clone(), policy, &topo)
    };

    let (h_drop, _, rep_drop) = mk().run_semi_async(
        &groups,
        &FedAvg,
        SamplingStrategy::ESRCov,
        &AsyncConfig {
            staleness: StalenessPolicy::DropStale,
            cloud_deadline_factor: 1.05,
        },
    );
    let dropped: usize = rep_drop.rounds.iter().map(|r| r.stale_dropped).sum();
    assert!(dropped > 0, "tight cloud deadline should strand uploads");
    assert!(h_drop.timed_events().iter().any(|e| matches!(
        e,
        TimedEvent::StaleArrival {
            admitted: false,
            ..
        }
    )));
    assert!(h_drop
        .timed_events()
        .iter()
        .any(|e| matches!(e, TimedEvent::CloudRoundClosed { .. })));

    let (h_w, _, rep_w) = mk().run_semi_async(
        &groups,
        &FedAvg,
        SamplingStrategy::ESRCov,
        &AsyncConfig {
            staleness: StalenessPolicy::Weighted { decay: 0.5 },
            cloud_deadline_factor: 1.05,
        },
    );
    let admitted: usize = rep_w.rounds.iter().map(|r| r.stale_admitted).sum();
    assert!(admitted > 0, "weighted policy should admit parked results");
    assert!(h_w
        .timed_events()
        .iter()
        .any(|e| matches!(e, TimedEvent::StaleArrival { admitted: true, .. })));
    // A busy edge sampled again before its upload resolves sits out.
    let busy: usize = rep_w.rounds.iter().map(|r| r.busy_skipped).sum();
    let _ = busy; // may be zero on some seeds; the event type is covered below
}

#[test]
fn semi_async_cuts_emulated_wall_clock_under_stragglers() {
    // The tentpole's point: with heavy stragglers, quorum-or-deadline
    // rounds finish in strictly less emulated time than wait-for-all.
    let (cfg, model, part, topo, groups, train, test) = world(48);
    let plan = FaultPlan {
        straggler_fraction: 0.25,
        straggler_factor: 8.0,
        ..FaultPlan::none()
    };
    let mk = |policy: FaultPolicy| {
        Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        )
        .with_faults(plan.clone(), policy, &topo)
    };
    let (_, _, rep_wait) = mk(lockstep_limit_policy()).run_semi_async(
        &groups,
        &FedAvg,
        SamplingStrategy::ESRCov,
        &AsyncConfig::default(),
    );
    let (_, _, rep_cut) = mk(FaultPolicy {
        quorum_fraction: 0.7,
        deadline_factor: 1.5,
        ..FaultPolicy::default()
    })
    .run_semi_async(
        &groups,
        &FedAvg,
        SamplingStrategy::ESRCov,
        &AsyncConfig::default(),
    );
    assert!(
        rep_cut.final_clock_s() < rep_wait.final_clock_s(),
        "quorum-or-deadline ({:.1}s) should beat wait-for-all ({:.1}s)",
        rep_cut.final_clock_s(),
        rep_wait.final_clock_s()
    );
}

#[test]
fn self_healing_no_churn_limit_is_bit_identical() {
    // Without `with_churn`, the self-healing semi-async loop must
    // reproduce `run_semi_async` on the formation-time groups bit for
    // bit: same history, same params, same emulated-time report, and an
    // empty regroup log.
    let algo = CovGrouping {
        min_group_size: 2,
        max_cov: 1.0,
    };
    for seed in [61u64, 62, 63] {
        let (cfg, model, part, topo, groups, train, test) = world(seed);
        let plan = FaultPlan {
            straggler_fraction: 0.4,
            straggler_factor: 8.0,
            ..FaultPlan::none()
        };
        let policy = FaultPolicy {
            quorum_fraction: 0.7,
            deadline_factor: 1.5,
            ..FaultPolicy::default()
        };
        let mk = || {
            Trainer::new(
                cfg.clone(),
                model.clone(),
                train.clone(),
                part.clone(),
                test.clone(),
            )
            .with_faults(plan.clone(), policy, &topo)
        };
        let (h_static, p_static, rep_static) = mk().run_semi_async(
            &groups,
            &FedAvg,
            SamplingStrategy::ESRCov,
            &AsyncConfig::default(),
        );
        let (h_heal, p_heal, rep_heal, membership) = mk()
            .run_semi_async_self_healing(
                &algo,
                &topo,
                &FedAvg,
                SamplingStrategy::ESRCov,
                &AsyncConfig::default(),
            )
            .unwrap();
        assert_eq!(membership.groups, groups, "seed {seed}: formation diverged");
        assert_eq!(h_heal, h_static, "seed {seed}: history diverged");
        assert_eq!(p_heal, p_static, "seed {seed}: params diverged");
        assert_eq!(rep_heal, rep_static, "seed {seed}: async report diverged");
        assert!(h_heal.regroup_events().is_empty());
    }
}

#[test]
fn churned_semi_async_run_heals_deterministically() {
    // The previously-rejected combination: churn + semi-async. The run
    // must complete, log membership transitions, keep the emulated clock
    // monotone (held rounds may freeze it, never rewind it), and be a
    // pure function of its seeds.
    let algo = CovGrouping {
        min_group_size: 2,
        max_cov: 1.0,
    };
    let churn = gfl_faults::ChurnPlan {
        seed: 71 + seed_offset(),
        horizon: 4,
        departure_fraction: 0.4,
        arrival_fraction: 0.3,
        flap_prob: 0.1,
    };
    let run = || {
        let (cfg, model, part, topo, train, _groups_unused, test) = {
            let (cfg, model, part, topo, groups, train, test) = world(64);
            (cfg, model, part, topo, train, groups, test)
        };
        let trainer = Trainer::new(cfg, model, train, part, test)
            .with_faults(
                FaultPlan {
                    straggler_fraction: 0.3,
                    straggler_factor: 6.0,
                    ..FaultPlan::none()
                },
                FaultPolicy {
                    quorum_fraction: 0.7,
                    deadline_factor: 1.5,
                    ..FaultPolicy::default()
                },
                &topo,
            )
            .with_churn(churn.clone(), RegroupPolicy::default());
        trainer
            .run_semi_async_self_healing(
                &algo,
                &topo,
                &FedAvg,
                SamplingStrategy::ESRCov,
                &AsyncConfig::default(),
            )
            .unwrap()
    };
    let (h_a, p_a, rep_a, m_a) = run();
    let (h_b, p_b, rep_b, m_b) = run();
    assert_eq!(h_a, h_b, "trajectories diverged");
    assert_eq!(p_a, p_b, "models diverged");
    assert_eq!(rep_a, rep_b, "async reports diverged");
    assert_eq!(m_a, m_b, "membership diverged");
    assert!(
        !h_a.regroup_events().is_empty(),
        "a 40%-departure plan over 4 rounds should move somebody"
    );
    let mut prev = 0.0f64;
    for r in &rep_a.rounds {
        assert!(r.clock_s >= prev, "emulated clock went backwards");
        prev = r.clock_s;
    }
}
