//! Chaos suite: the fault-injection subsystem under deterministic abuse.
//!
//! Every test runs the real Algorithm 1 engine on a tiny synthetic
//! federation with a seeded [`FaultPlan`] and checks the graceful-
//! degradation contract: identical seeds + identical plan ⇒ bit-identical
//! trajectories, injected faults leave structured [`FaultEvent`]s behind,
//! the global model never absorbs a non-finite update, and a moderately
//! faulted run still learns.
//!
//! Set `GFL_SEED` (CI runs 1 and 2) to shift every seed in the suite and
//! shake out seed-sensitive nondeterminism.

use gfl_core::checkpoint::Checkpoint;
use gfl_core::prelude::*;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_faults::{FaultPlan, FaultPolicy, OutageWindow};
use gfl_sim::Topology;
use gfl_tensor::init;

/// CI seed shift: `GFL_SEED=n` offsets every seed in the suite.
fn seed_offset() -> u64 {
    std::env::var("GFL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Tiny two-edge federation shared by every chaos test.
fn world(
    seed: u64,
) -> (
    GroupFelConfig,
    gfl_nn::Network,
    ClientPartition,
    Topology,
    Vec<Group>,
    gfl_data::Dataset,
    gfl_data::Dataset,
) {
    let seed = seed + seed_offset();
    let data = SyntheticSpec::tiny().generate(600, seed);
    let (train, test) = data.split_holdout(5);
    let part = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.5, seed));
    let topo = Topology::even_split(2, part.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 2,
            max_cov: 1.0,
        },
        &topo,
        &part.label_matrix,
        seed,
    );
    let mut cfg = GroupFelConfig::tiny();
    cfg.seed = seed;
    (
        cfg,
        gfl_nn::zoo::tiny(4, 3),
        part,
        topo,
        groups,
        train,
        test,
    )
}

fn trainer(seed: u64) -> (Trainer, Topology, Vec<Group>) {
    let (cfg, model, part, topo, groups, train, test) = world(seed);
    (Trainer::new(cfg, model, train, part, test), topo, groups)
}

#[test]
fn empty_plan_is_bit_identical_to_no_faults() {
    // Compiling the fault machinery in must cost nothing behaviorally:
    // fault decisions are pure hashes, never draws from the engine RNG.
    let (clean, _, groups) = trainer(11);
    let (armed, topo, _) = trainer(11);
    let armed = armed.with_faults(FaultPlan::none(), FaultPolicy::default(), &topo);
    let a = clean.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
    let b = armed.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
    assert_eq!(a, b);
    assert!(b.fault_events().is_empty());
}

#[test]
fn faulted_run_is_deterministic() {
    // Identical seeds + identical plan ⇒ bit-identical RunHistory,
    // fault log included.
    let run = || {
        let (t, topo, groups) = trainer(12);
        let t = t.with_faults(FaultPlan::moderate(99), FaultPolicy::default(), &topo);
        t.run(&groups, &FedAvg, SamplingStrategy::ESRCov)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert!(
        !a.fault_events().is_empty(),
        "moderate plan should inject something over 4 rounds"
    );
}

#[test]
fn total_dropout_holds_the_round() {
    // dropout_prob = 1.0: every client drops every group round. The global
    // model must be held (x_{t+1} = x_t), stay finite, and each held round
    // must be recorded — even without a fault plan attached.
    let (cfg, model, part, _topo, groups, train, test) = world(13);
    let mut cfg = cfg;
    cfg.dropout_prob = 1.0;
    let seed = cfg.seed;
    let rounds = cfg.global_rounds;
    let t = Trainer::new(cfg, model, train, part, test);
    let initial = t.model().init_params(&mut init::rng(seed));
    let (h, params) = t.run_returning_params(&groups, &FedAvg, SamplingStrategy::Random);
    assert_eq!(params, initial, "held rounds must not move the model");
    assert!(params.iter().all(|w| w.is_finite()));
    assert_eq!(h.fault_summary().rounds_held, rounds);
    assert!((0..rounds).all(|r| h.faults_in_round(r).count() == 1));
}

#[test]
fn total_dropout_with_quorum_skips_every_group() {
    // Same zero-survivor storm, but with the fault policy armed: every
    // group misses quorum, is skipped, and the round is still held safely.
    let (cfg, model, part, topo, groups, train, test) = world(13);
    let mut cfg = cfg;
    cfg.dropout_prob = 1.0;
    let seed = cfg.seed;
    let rounds = cfg.global_rounds;
    let t = Trainer::new(cfg, model, train, part, test).with_faults(
        FaultPlan::none(),
        FaultPolicy::default(),
        &topo,
    );
    let initial = t.model().init_params(&mut init::rng(seed));
    let (h, params) = t.run_returning_params(&groups, &FedAvg, SamplingStrategy::Random);
    assert_eq!(params, initial);
    let s = h.fault_summary();
    assert_eq!(s.rounds_held, rounds);
    assert!(s.groups_skipped > 0, "quorum should reject empty groups");
}

#[test]
fn corrupt_updates_never_reach_the_global_model() {
    // Every update arrives as NaN; the non-finite gate must reject them
    // all at the client level and leave the global model untouched.
    let plan = FaultPlan {
        corrupt_prob: 1.0,
        ..FaultPlan::none()
    };
    let (t, topo, groups) = trainer(14);
    let t = t.with_faults(plan, FaultPolicy::default(), &topo);
    let seed = t.config().seed;
    let initial = t.model().init_params(&mut init::rng(seed));
    let (h, params) = t.run_returning_params(&groups, &FedAvg, SamplingStrategy::Random);
    assert!(params.iter().all(|w| w.is_finite()));
    assert_eq!(params, initial);
    let s = h.fault_summary();
    assert!(s.corrupt_rejected > 0);
    assert_eq!(s.rounds_held, t.config().global_rounds);
}

#[test]
fn every_fault_kind_leaves_an_event() {
    // A plan hot enough that each injector fires within a short run, so
    // the audit trail covers the whole taxonomy.
    let plan = FaultPlan {
        seed: 5,
        straggler_fraction: 0.5,
        straggler_factor: 20.0,
        straggler_jitter: 0.0,
        crash_prob: 0.3,
        corrupt_prob: 0.2,
        upload_fail_prob: 0.85,
        edge_outages: vec![OutageWindow {
            edge: 0,
            from_round: 1,
            until_round: 3,
        }],
    };
    let policy = FaultPolicy {
        quorum_fraction: 0.6,
        max_retries: 1,
        ..FaultPolicy::default()
    };
    let (cfg, model, part, topo, groups, train, test) = world(15);
    let mut cfg = cfg;
    cfg.global_rounds = 8;
    let t = Trainer::new(cfg, model, train, part, test).with_faults(plan, policy, &topo);
    let h = t.run(&groups, &FedAvg, SamplingStrategy::Random);
    let s = h.fault_summary();
    assert!(s.crashes > 0, "no crashes recorded: {s}");
    assert!(s.stragglers_cut > 0, "no straggler cuts recorded: {s}");
    assert!(
        s.corrupt_rejected > 0,
        "no corrupt rejections recorded: {s}"
    );
    assert!(s.edge_outages > 0, "no edge outages recorded: {s}");
    assert!(s.upload_retries > 0, "no upload retries recorded: {s}");
    assert!(s.uploads_lost > 0, "no lost uploads recorded: {s}");
    assert!(s.groups_skipped > 0, "no quorum skips recorded: {s}");
}

#[test]
fn moderate_faults_degrade_gracefully() {
    // The headline contract: a moderate fault plan completes with finite
    // parameters, a populated fault log, and accuracy within 5 points of
    // the fault-free baseline.
    let (cfg, model, part, topo, groups, train, test) = world(16);
    let mut cfg = cfg;
    cfg.global_rounds = 12;
    cfg.lr = gfl_nn::sgd::LrSchedule::Constant(0.2);
    let clean = Trainer::new(
        cfg.clone(),
        model.clone(),
        train.clone(),
        part.clone(),
        test.clone(),
    );
    let baseline = clean.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
    let faulted = Trainer::new(cfg, model, train, part, test).with_faults(
        FaultPlan::moderate(3),
        FaultPolicy::default(),
        &topo,
    );
    let (h, params) = faulted.run_returning_params(&groups, &FedAvg, SamplingStrategy::ESRCov);
    assert!(params.iter().all(|w| w.is_finite()));
    assert!(!h.fault_events().is_empty());
    let gap = baseline.best_accuracy() - h.best_accuracy();
    assert!(
        gap <= 0.05,
        "faulted run degraded too far: clean {} vs faulted {} (gap {gap})",
        baseline.best_accuracy(),
        h.best_accuracy()
    );
}

#[test]
fn faulted_checkpoint_resume_is_bit_identical() {
    // Satellite: interrupt a *faulted* run midway, checkpoint through the
    // JSON round-trip, resume — the trajectory (records AND fault log)
    // must match the uninterrupted run exactly.
    let (cfg, model, part, topo, groups, train, test) = world(17);
    let mut cfg = cfg;
    cfg.global_rounds = 6;
    let seed = cfg.seed;
    let make = || {
        Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        )
        .with_faults(FaultPlan::moderate(21), FaultPolicy::default(), &topo)
    };
    let t = make();
    let covs: Vec<f32> = groups
        .iter()
        .map(|g| group_cov(&t.partition().label_matrix, g))
        .collect();
    let probs = SamplingStrategy::ESRCov.probabilities(&covs);

    // Uninterrupted 6 rounds.
    let mut p_straight = t.model().init_params(&mut init::rng(seed));
    let mut ledger = t.ledger_for(&FedAvg);
    let mut hist = RunHistory::default();
    t.run_resumable(
        &groups,
        &FedAvg,
        &probs,
        &mut p_straight,
        &mut ledger,
        &mut hist,
        0,
        6,
    );

    // 3 rounds → checkpoint → JSON round-trip → fresh trainer → 3 more.
    let mut p_half = t.model().init_params(&mut init::rng(seed));
    let mut ledger2 = t.ledger_for(&FedAvg);
    let mut hist2 = RunHistory::default();
    t.run_resumable(
        &groups,
        &FedAvg,
        &probs,
        &mut p_half,
        &mut ledger2,
        &mut hist2,
        0,
        3,
    );
    assert!(
        !hist2.fault_events().is_empty(),
        "need faults before the cut for the test to mean anything"
    );
    let cp = Checkpoint::new(p_half, 3, hist2, cfg.clone(), ledger2.total());
    let restored = Checkpoint::from_json(&cp.to_json()).unwrap();
    assert_eq!(restored.history.fault_events(), cp.history.fault_events());

    let t2 = make();
    let mut p_resumed = restored.params.clone();
    let mut hist3 = restored.history.clone();
    t2.run_resumable(
        &groups,
        &FedAvg,
        &probs,
        &mut p_resumed,
        &mut ledger2,
        &mut hist3,
        restored.round,
        3,
    );
    assert_eq!(p_resumed, p_straight, "resumed model diverged");
    assert_eq!(hist3, hist, "resumed trajectory or fault log diverged");
}
