//! End-to-end trace acceptance: a traced paper-shaped run must emit a
//! JSONL trace that (a) round-trips through [`gfl_obs::TraceReader`]
//! byte-faithfully and (b) accounts ≥ 95% of every round's wall-clock time
//! across the four disjoint phase spans (train / aggregate / comm / eval).

use gfl_core::prelude::*;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_obs::{SpanKind, TraceCollector, TraceReader};
use gfl_sim::Topology;

/// A paper_vision-shaped federation (§7.2: K=5, E=2, batch 32, vision
/// model, CoV grouping, stabilized weighting), scaled down from 60 to 24
/// clients and 3 global rounds so the test stays fast in debug builds.
fn paper_shaped() -> (Trainer, Vec<Group>, usize) {
    let data = SyntheticSpec::vision_like().generate(1_200, 1);
    let (train, test) = data.split_holdout(6);
    let partition = ClientPartition::dirichlet(
        &train,
        &PartitionSpec {
            num_clients: 24,
            alpha: 0.1,
            min_size: 10,
            max_size: 80,
            seed: 1,
        },
    );
    let topology = Topology::even_split(3, partition.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 3,
            max_cov: 0.5,
        },
        &topology,
        &partition.label_matrix,
        1,
    );
    let mut config = GroupFelConfig::paper_vision();
    config.global_rounds = 3;
    config.sampled_groups = config.sampled_groups.min(groups.len());
    config.eval_every = 1;
    config.cost_budget = None;
    config.seed = 1;
    let rounds = config.global_rounds;
    (
        Trainer::new(config, gfl_nn::zoo::vision_model(), train, partition, test),
        groups,
        rounds,
    )
}

#[test]
fn paper_shaped_trace_round_trips_and_covers_rounds() {
    let (trainer, groups, rounds) = paper_shaped();
    let obs = TraceCollector::new();
    let trainer = trainer.with_observer(std::sync::Arc::clone(&obs));
    let history = trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
    assert_eq!(history.records().len(), rounds);
    let trace = obs.finish(1);

    // --- File round-trip: save JSONL, read it back, compare faithfully.
    let path = std::env::temp_dir().join(format!("gfl_trace_test_{}.jsonl", std::process::id()));
    trace.save(&path).expect("write trace");
    let back = TraceReader::read(&path).expect("trace must parse");
    std::fs::remove_file(&path).ok();

    assert_eq!(back.meta.schema_version, gfl_obs::SCHEMA_VERSION);
    assert_eq!(back.meta.threads, 1);
    assert_eq!(back.spans, trace.spans, "spans must round-trip unchanged");
    assert_eq!(
        back.rounds, trace.rounds,
        "rounds must round-trip unchanged"
    );
    let summary = back.summary.as_ref().expect("summary record present");
    assert_eq!(summary.rounds, rounds as u64);

    // --- Structure: every round carries the full phase-span complement.
    assert_eq!(back.rounds.len(), rounds);
    assert_eq!(back.span_count(SpanKind::Round), rounds);
    assert_eq!(back.span_count(SpanKind::Train), rounds);
    assert_eq!(back.span_count(SpanKind::Aggregate), rounds);
    assert_eq!(back.span_count(SpanKind::Eval), rounds);
    assert!(back.span_count(SpanKind::ClientStep) > 0);

    // --- Coverage: the four disjoint phases must account for ≥ 95% of
    // every round's wall-clock time (the acceptance bar for the layer).
    for r in &back.rounds {
        let covered = r.train_ns + r.aggregate_ns + r.comm_ns + r.eval_ns;
        assert!(
            covered <= r.wall_ns,
            "round {}: phases ({covered} ns) exceed wall ({} ns)",
            r.round,
            r.wall_ns
        );
        assert!(
            r.coverage() >= 0.95,
            "round {}: phase spans cover only {:.1}% of wall-clock time",
            r.round,
            r.coverage() * 100.0
        );
        assert!(r.clients_trained > 0);
        assert!(r.cost_total > 0.0);
    }
    assert!(back.round_coverage() >= 0.95);

    // --- Metrics made it into the summary.
    let metrics = &summary.metrics;
    assert_eq!(
        metrics.counter("rounds.total"),
        Some(rounds as u64),
        "rounds.total counter"
    );
    assert!(metrics.counter("clients.trained").unwrap_or(0) > 0);
    assert!(metrics.gauge("cost.total").unwrap_or(0.0) > 0.0);

    // --- Byte accounting (schema v2): every round carries per-link wire
    // bytes and they sum into the comm.bytes.* counters.
    for r in &back.rounds {
        assert!(
            r.client_edge_bytes.unwrap_or(0) > 0,
            "round {}: no client-edge bytes",
            r.round
        );
        assert!(
            r.edge_cloud_bytes.unwrap_or(0) > 0,
            "round {}: no edge-cloud bytes",
            r.round
        );
    }
    let ce_sum: u64 = back.rounds.iter().filter_map(|r| r.client_edge_bytes).sum();
    let ec_sum: u64 = back.rounds.iter().filter_map(|r| r.edge_cloud_bytes).sum();
    assert_eq!(metrics.counter("comm.bytes.client_edge"), Some(ce_sum));
    assert_eq!(metrics.counter("comm.bytes.edge_cloud"), Some(ec_sum));
}

#[test]
fn streaming_collector_keeps_span_memory_bounded_on_a_paper_shaped_run() {
    // A deliberately tiny buffer (4 spans per shard) forces mid-round
    // spills on a run producing thousands of client-step spans. The
    // collector must (a) never buffer more than its configured bound,
    // (b) drain to zero at every round barrier, and (c) still stream a
    // complete, parseable trace.
    let (trainer, groups, rounds) = paper_shaped();
    let path = std::env::temp_dir().join(format!(
        "gfl_stream_bound_test_{}.jsonl",
        std::process::id()
    ));
    let obs = TraceCollector::streaming_to(
        &path,
        1,
        gfl_obs::StreamConfig {
            span_buffer_cap: 4 * gfl_obs::SHARDS,
            ..gfl_obs::StreamConfig::default()
        },
    )
    .expect("open trace sink");
    let trainer = trainer.with_observer(std::sync::Arc::clone(&obs));
    trainer.run(&groups, &FedAvg, SamplingStrategy::ESRCov);

    let bound = obs.span_buffer_bound();
    assert_eq!(bound, 4 * gfl_obs::SHARDS);
    assert!(
        obs.max_buffered_spans() <= bound,
        "buffered {} spans, bound {bound}",
        obs.max_buffered_spans()
    );
    assert_eq!(obs.buffered_spans(), 0, "round barrier must drain shards");

    let trace = obs.finish(1);
    assert!(
        trace.spans.is_empty(),
        "non-tee streaming must not retain spans in memory"
    );
    let back = TraceReader::read(&path).expect("streamed trace parses");
    std::fs::remove_file(&path).ok();
    assert_eq!(back.rounds.len(), rounds);
    let summary = back.summary.as_ref().expect("summary present");
    assert_eq!(summary.rounds, rounds as u64);
    // The streamed file holds far more spans than the collector was ever
    // allowed to buffer — the memory bound is real, not slack.
    assert!(
        back.spans.len() > bound,
        "run produced {} spans, bound {bound}: cap never exercised",
        back.spans.len()
    );
}
