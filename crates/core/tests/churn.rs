//! Churn suite: online membership + self-healing regrouping under
//! deterministic abuse.
//!
//! Every test runs the real Algorithm 1 engine on a tiny synthetic
//! federation with a seeded [`ChurnPlan`] and checks the self-healing
//! contract: clean plans are bit-identical to the static engine, churned
//! runs are deterministic down to the regroup log, zero-survivor groups
//! are dissolved rather than held forever, healed runs stay close to the
//! clean baseline while frozen partitions degrade, and a faulted-churn
//! run resumed from a post-regroup checkpoint reproduces the original
//! trajectory exactly.
//!
//! Set `GFL_SEED` (CI runs 1 and 2) to shift every seed in the suite and
//! shake out seed-sensitive nondeterminism.

use gfl_core::checkpoint::Checkpoint;
use gfl_core::membership::{MembershipState, RegroupEvent, RegroupPolicy};
use gfl_core::prelude::*;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_faults::{ChurnPlan, FaultPlan, FaultPolicy};
use gfl_sim::Topology;
use gfl_tensor::init;

/// CI seed shift: `GFL_SEED=n` offsets every seed in the suite.
fn seed_offset() -> u64 {
    std::env::var("GFL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Tiny two-edge federation shared by every churn test.
fn world(
    seed: u64,
) -> (
    GroupFelConfig,
    gfl_nn::Network,
    ClientPartition,
    Topology,
    gfl_data::Dataset,
    gfl_data::Dataset,
) {
    let seed = seed + seed_offset();
    let data = SyntheticSpec::tiny().generate(600, seed);
    let (train, test) = data.split_holdout(5);
    let part = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.5, seed));
    let topo = Topology::even_split(2, part.sizes());
    let mut cfg = GroupFelConfig::tiny();
    cfg.seed = seed;
    (cfg, gfl_nn::zoo::tiny(4, 3), part, topo, train, test)
}

fn algo() -> CovGrouping {
    CovGrouping {
        min_group_size: 2,
        max_cov: 1.0,
    }
}

#[test]
fn clean_churn_plan_is_bit_identical_to_static_run() {
    // Compiling the churn machinery in must cost nothing behaviorally: a
    // clean plan through the self-healing loop reproduces the static
    // engine bit for bit.
    let (cfg, model, part, topo, train, test) = world(21);
    let static_groups = form_groups_per_edge(&algo(), &topo, &part.label_matrix, cfg.seed);
    let plain = Trainer::new(
        cfg.clone(),
        model.clone(),
        train.clone(),
        part.clone(),
        test.clone(),
    );
    let (h_static, p_static) =
        plain.run_returning_params(&static_groups, &FedAvg, SamplingStrategy::ESRCov);

    let churned = Trainer::new(cfg, model, train, part, test)
        .with_churn(ChurnPlan::none(), RegroupPolicy::default());
    let (h_churn, p_churn, membership) = churned
        .run_self_healing(&algo(), &topo, &FedAvg, SamplingStrategy::ESRCov)
        .unwrap();

    assert_eq!(membership.groups, static_groups);
    assert_eq!(p_static, p_churn);
    assert_eq!(h_static, h_churn);
    assert!(h_churn.regroup_events().is_empty());
}

#[test]
fn churned_run_is_deterministic_down_to_the_regroup_log() {
    // Same seed ⇒ identical trajectory AND identical RegroupEvent log.
    let plan = ChurnPlan {
        seed: 31 + seed_offset(),
        horizon: 4,
        departure_fraction: 0.4,
        arrival_fraction: 0.3,
        flap_prob: 0.1,
    };
    let run = || {
        let (cfg, model, part, topo, train, test) = world(22);
        let t = Trainer::new(cfg, model, train, part, test)
            .with_churn(plan.clone(), RegroupPolicy::default());
        t.run_self_healing(&algo(), &topo, &FedAvg, SamplingStrategy::ESRCov)
            .unwrap()
    };
    let (h_a, p_a, m_a) = run();
    let (h_b, p_b, m_b) = run();
    assert_eq!(h_a, h_b, "trajectories diverged");
    assert_eq!(p_a, p_b, "models diverged");
    assert_eq!(m_a, m_b, "membership state diverged");
    assert_eq!(h_a.regroup_events(), h_b.regroup_events());
    assert!(
        !h_a.regroup_events().is_empty(),
        "a 40%-departure plan over 4 rounds should move somebody"
    );
}

#[test]
fn zero_survivor_groups_are_dissolved_not_held_forever() {
    // Every client departs within the horizon: every group must dissolve
    // (never lingering empty), later rounds are held safely, and the
    // final partition is empty.
    let (cfg, model, part, topo, train, test) = world(23);
    let mut cfg = cfg;
    cfg.global_rounds = 10;
    let plan = ChurnPlan {
        seed: 41 + seed_offset(),
        horizon: 6,
        departure_fraction: 1.0,
        arrival_fraction: 0.0,
        flap_prob: 0.0,
    };
    let n_clients = part.num_clients();
    let t = Trainer::new(cfg, model, train, part, test).with_churn(plan, RegroupPolicy::default());
    let (h, p, membership) = t
        .run_self_healing(&algo(), &topo, &FedAvg, SamplingStrategy::ESRCov)
        .unwrap();

    assert!(membership.groups.is_empty(), "{:?}", membership.groups);
    assert_eq!(membership.active_members(), 0);
    let s = h.regroup_summary();
    assert_eq!(s.departures, n_clients);
    assert!(s.dissolved > 0, "no group was ever dissolved: {s}");
    // Emptied-out rounds are held, and the model stays finite throughout.
    assert!(h.fault_summary().rounds_held > 0);
    assert!(p.iter().all(|w| w.is_finite()));
}

#[test]
fn arrivals_join_groups_on_their_own_edge() {
    let plan = ChurnPlan {
        seed: 43 + seed_offset(),
        horizon: 4,
        departure_fraction: 0.0,
        arrival_fraction: 0.5,
        flap_prob: 0.0,
    };
    let (cfg, model, part, topo, train, test) = world(24);
    let t = Trainer::new(cfg, model, train, part, test)
        .with_churn(plan.clone(), RegroupPolicy::default());
    let (h, _, membership) = t
        .run_self_healing(&algo(), &topo, &FedAvg, SamplingStrategy::ESRCov)
        .unwrap();
    let arrivals: Vec<&RegroupEvent> = h
        .regroup_events()
        .iter()
        .filter(|e| matches!(e, RegroupEvent::ClientArrived { .. }))
        .collect();
    assert!(!arrivals.is_empty(), "half the clients should arrive late");
    // Every arrival was actually placed, and the final partition keeps
    // every group within one edge.
    for e in &arrivals {
        let RegroupEvent::ClientArrived { group, .. } = e else {
            unreachable!()
        };
        assert!(group.is_some(), "healing policy must place arrivals");
    }
    for g in &membership.groups {
        let on_first_edge = topo.clients_of(0).iter().any(|c| g.contains(c));
        let on_second_edge = topo.clients_of(1).iter().any(|c| g.contains(c));
        assert!(
            !(on_first_edge && on_second_edge),
            "group {g:?} spans both edges"
        );
    }
}

#[test]
fn frozen_policy_leaves_arrivals_unplaced() {
    let plan = ChurnPlan {
        seed: 47 + seed_offset(),
        horizon: 4,
        departure_fraction: 0.0,
        arrival_fraction: 0.5,
        flap_prob: 0.0,
    };
    let (cfg, model, part, topo, train, test) = world(25);
    let t = Trainer::new(cfg, model, train, part, test)
        .with_churn(plan.clone(), RegroupPolicy::frozen());
    let (h, _, membership) = t
        .run_self_healing(&algo(), &topo, &FedAvg, SamplingStrategy::ESRCov)
        .unwrap();
    let placed = h
        .regroup_events()
        .iter()
        .any(|e| matches!(e, RegroupEvent::ClientArrived { group: Some(_), .. }));
    assert!(!placed, "frozen policy must never place arrivals");
    assert!(h.regroup_summary().dissolved == 0);
    assert!(h.regroup_summary().migrations == 0);
    // The partition is exactly the round-0 formation over the founding
    // cohort (clients already present at round 0) — nobody joins after.
    let founders: Vec<bool> = (0..t.partition().num_clients())
        .map(|c| plan.present(c, 0))
        .collect();
    let founding_groups = gfl_core::membership::form_groups_active(
        &algo(),
        &topo,
        &t.partition().label_matrix,
        &founders,
        t.config().seed,
        0,
    );
    assert_eq!(membership.groups, founding_groups);
}

#[test]
fn self_healing_stays_close_to_clean_while_frozen_degrades() {
    // The acceptance scenario: 20% permanent departures (plus a wave of
    // late arrivals) over 100 rounds. The healed run must finish within 5
    // accuracy points of the clean run; the same churn with regrouping
    // frozen must do no better than the healed run.
    let (cfg, model, part, topo, train, test) = world(26);
    let mut cfg = cfg;
    cfg.global_rounds = 100;
    cfg.eval_every = 20;
    cfg.lr = gfl_nn::sgd::LrSchedule::Constant(0.2);
    let plan = ChurnPlan {
        seed: 53 + seed_offset(),
        horizon: 100,
        departure_fraction: 0.2,
        arrival_fraction: 0.25,
        flap_prob: 0.02,
    };
    let make = || {
        Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        )
    };

    let static_groups = form_groups_per_edge(&algo(), &topo, &part.label_matrix, cfg.seed);
    let clean = make().run(&static_groups, &FedAvg, SamplingStrategy::ESRCov);

    let healed_trainer = make().with_churn(plan.clone(), RegroupPolicy::default());
    let (healed, p_healed, _) = healed_trainer
        .run_self_healing(&algo(), &topo, &FedAvg, SamplingStrategy::ESRCov)
        .unwrap();

    let frozen_trainer = make().with_churn(plan, RegroupPolicy::frozen());
    let (frozen, p_frozen, _) = frozen_trainer
        .run_self_healing(&algo(), &topo, &FedAvg, SamplingStrategy::ESRCov)
        .unwrap();

    assert!(p_healed.iter().all(|w| w.is_finite()));
    assert!(p_frozen.iter().all(|w| w.is_finite()));
    assert!(
        !healed.regroup_events().is_empty(),
        "the healed run should have membership transitions"
    );

    let gap_healed = clean.best_accuracy() - healed.best_accuracy();
    assert!(
        gap_healed <= 0.05,
        "healed run degraded too far: clean {} vs healed {} (gap {gap_healed})",
        clean.best_accuracy(),
        healed.best_accuracy()
    );
    assert!(
        frozen.best_accuracy() <= healed.best_accuracy() + 0.02,
        "frozen partition should not beat self-healing: frozen {} vs healed {}",
        frozen.best_accuracy(),
        healed.best_accuracy()
    );
}

#[test]
fn faulted_churn_resume_from_post_regroup_checkpoint_is_bit_identical() {
    // The hardest determinism contract: faults AND churn AND healing,
    // interrupted after a regroup, checkpointed through the JSON
    // round-trip (membership state included), resumed on a fresh trainer
    // — everything must match the uninterrupted run exactly.
    let (cfg, model, part, topo, train, test) = world(27);
    let mut cfg = cfg;
    cfg.global_rounds = 10;
    let plan = ChurnPlan {
        seed: 61 + seed_offset(),
        horizon: 5,
        departure_fraction: 0.5,
        arrival_fraction: 0.3,
        flap_prob: 0.1,
    };
    let policy = RegroupPolicy {
        cooldown: 1,
        ..RegroupPolicy::default()
    };
    let seed = cfg.seed;
    let make = || {
        Trainer::new(
            cfg.clone(),
            model.clone(),
            train.clone(),
            part.clone(),
            test.clone(),
        )
        .with_faults(FaultPlan::moderate(5), FaultPolicy::default(), &topo)
        .with_churn(plan.clone(), policy.clone())
    };
    let form = |t: &Trainer| {
        MembershipState::form(
            &algo(),
            &topo,
            &t.partition().label_matrix,
            Some(&plan),
            policy.clone(),
            seed,
            SamplingStrategy::ESRCov,
            0,
        )
        .unwrap()
    };

    // Uninterrupted 10 rounds.
    let t = make();
    let mut m_straight = form(&t);
    let mut p_straight = t.model().init_params(&mut init::rng(seed));
    let mut ledger = t.ledger_for(&FedAvg);
    let mut hist = RunHistory::default();
    t.run_self_healing_resumable(
        &algo(),
        &topo,
        &FedAvg,
        SamplingStrategy::ESRCov,
        &mut m_straight,
        &mut p_straight,
        &mut ledger,
        &mut hist,
        0,
        10,
    )
    .unwrap();

    // 5 rounds → checkpoint (with membership) → JSON → fresh trainer → 5.
    let t1 = make();
    let mut m_half = form(&t1);
    let mut p_half = t1.model().init_params(&mut init::rng(seed));
    let mut ledger2 = t1.ledger_for(&FedAvg);
    let mut hist2 = RunHistory::default();
    t1.run_self_healing_resumable(
        &algo(),
        &topo,
        &FedAvg,
        SamplingStrategy::ESRCov,
        &mut m_half,
        &mut p_half,
        &mut ledger2,
        &mut hist2,
        0,
        5,
    )
    .unwrap();
    assert!(
        !hist2.regroup_events().is_empty(),
        "need a regroup before the cut for the test to mean anything"
    );
    let cp = Checkpoint::new(p_half, 5, hist2, cfg.clone(), ledger2.total())
        .with_membership(m_half.clone());
    let restored = Checkpoint::from_json(&cp.to_json()).unwrap();
    let mut m_resumed = restored.membership.clone().unwrap();
    assert_eq!(m_resumed, m_half, "membership state changed in transit");

    let t2 = make();
    let mut p_resumed = restored.params.clone();
    let mut hist3 = restored.history.clone();
    t2.run_self_healing_resumable(
        &algo(),
        &topo,
        &FedAvg,
        SamplingStrategy::ESRCov,
        &mut m_resumed,
        &mut p_resumed,
        &mut ledger2,
        &mut hist3,
        restored.round,
        5,
    )
    .unwrap();

    assert_eq!(p_resumed, p_straight, "resumed model diverged");
    assert_eq!(hist3, hist, "resumed trajectory diverged");
    assert_eq!(m_resumed, m_straight, "resumed membership diverged");
}
