//! Adversarial suite: deterministic poisoning campaigns end to end.
//!
//! Covers the attack↔defense loop the engine now closes: campaign
//! injection at the client update boundary, attack-success-rate (ASR)
//! evaluation on the accuracy cadence, defense interceptions (FLAME
//! filter, non-finite gate), and composition with churn, faults, robust
//! aggregation, and secure aggregation.
//!
//! Set `GFL_SEED` (CI runs 1 and 2) to shift every seed in the suite.

use gfl_core::checkpoint::Checkpoint;
use gfl_core::membership::RegroupPolicy;
use gfl_core::prelude::*;
use gfl_data::{ClientPartition, PartitionSpec, SyntheticSpec};
use gfl_faults::{ChurnPlan, FaultPlan, FaultPolicy};
use gfl_sim::Topology;

/// CI seed shift: `GFL_SEED=n` offsets every seed in the suite.
fn seed_offset() -> u64 {
    std::env::var("GFL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

struct World {
    cfg: GroupFelConfig,
    model: gfl_nn::Network,
    part: ClientPartition,
    topo: Topology,
    groups: Vec<Group>,
    train: gfl_data::Dataset,
    test: gfl_data::Dataset,
}

/// Tiny two-edge federation shared by every adversarial test.
fn world(seed: u64) -> World {
    let seed = seed + seed_offset();
    let data = SyntheticSpec::tiny().generate(600, seed);
    let (train, test) = data.split_holdout(5);
    let part = ClientPartition::dirichlet(&train, &PartitionSpec::tiny(0.5, seed));
    let topo = Topology::even_split(2, part.sizes());
    let groups = form_groups_per_edge(
        &CovGrouping {
            min_group_size: 2,
            max_cov: 1.0,
        },
        &topo,
        &part.label_matrix,
        seed,
    );
    let mut cfg = GroupFelConfig::tiny();
    cfg.global_rounds = 6;
    cfg.seed = seed;
    World {
        cfg,
        model: gfl_nn::zoo::tiny(4, 3),
        part,
        topo,
        groups,
        train,
        test,
    }
}

impl World {
    /// Re-forms the partition into larger groups (≥ 4 members), so the
    /// FLAME filter — which needs at least 3 live updates to cluster —
    /// actually engages.
    fn big_groups(&self) -> Vec<Group> {
        form_groups_per_edge(
            &CovGrouping {
                min_group_size: 4,
                max_cov: 10.0,
            },
            &self.topo,
            &self.part.label_matrix,
            self.cfg.seed,
        )
    }

    fn trainer(&self) -> Trainer {
        Trainer::new(
            self.cfg.clone(),
            self.model.clone(),
            self.train.clone(),
            self.part.clone(),
            self.test.clone(),
        )
    }
}

/// A plan aggressive enough that a tiny federation reliably contains
/// adversaries of every kind.
fn heavy_plan(seed: u64) -> AdversaryPlan {
    AdversaryPlan {
        backdoor_fraction: 0.25,
        label_flip_fraction: 0.2,
        model_poison_fraction: 0.2,
        ..AdversaryPlan::moderate(seed)
    }
}

#[test]
fn clean_plan_is_bit_identical_to_no_adversary() {
    // Chaos-style guarantee: compiling the adversary machinery in with a
    // zero-fraction plan must not move a single bit — no engine RNG stream
    // is consumed and no history field materializes.
    let w = world(41);
    let (h_clean, p_clean) =
        w.trainer()
            .run_returning_params(&w.groups, &FedAvg, SamplingStrategy::ESRCov);
    let (h_adv, p_adv) = w
        .trainer()
        .with_adversary(AdversaryPlan::none())
        .run_returning_params(&w.groups, &FedAvg, SamplingStrategy::ESRCov);
    assert_eq!(h_clean, h_adv);
    assert_eq!(p_clean, p_adv);
    assert_eq!(
        serde_json::to_string(&h_clean).unwrap(),
        serde_json::to_string(&h_adv).unwrap(),
        "clean histories must serialize byte-identically"
    );
    assert!(h_adv.attack_events().is_empty());
    assert!(h_adv.asr_records().is_empty());
}

#[test]
fn attacked_run_is_deterministic_and_replayable() {
    let w = world(42);
    let run = || {
        w.trainer()
            .with_adversary(heavy_plan(w.cfg.seed))
            .run_returning_params(&w.groups, &FedAvg, SamplingStrategy::ESRCov)
    };
    let (h1, p1) = run();
    let (h2, p2) = run();
    assert!(h1.attack_summary().injected() > 0, "plan must attack");
    assert_eq!(h1, h2);
    assert_eq!(p1, p2);
}

#[test]
fn every_campaign_kind_is_logged_and_measured() {
    // The tiny federation has ~12 clients, so a single plan seed may hash
    // a campaign to zero members. Deterministically scan a few plan seeds
    // until one run exhibits all three campaigns — every assertion below
    // then checks that run.
    let w = world(43);
    let h = (0..16)
        .map(|d| {
            w.trainer()
                .with_adversary(heavy_plan(w.cfg.seed + 101 * d))
                .run(&w.groups, &FedAvg, SamplingStrategy::ESRCov)
        })
        .find(|h| {
            let s = h.attack_summary();
            s.backdoor > 0 && s.label_flip > 0 && s.model_poison > 0
        })
        .expect("no plan seed produced all three campaigns in 16 tries");
    let s = h.attack_summary();
    assert!(s.backdoor > 0, "no backdoor injections: {s}");
    assert!(s.label_flip > 0, "no label flips: {s}");
    assert!(s.model_poison > 0, "no model poison: {s}");
    // ASR is measured on the same cadence as accuracy, with both
    // campaign-specific rates present.
    assert_eq!(h.asr_records().len(), h.records().len());
    for (asr, rec) in h.asr_records().iter().zip(h.records()) {
        assert_eq!(asr.round, rec.round);
        let t = asr
            .trigger_asr
            .expect("backdoor campaign measures trigger ASR");
        let f = asr.flip_asr.expect("label-flip campaign measures flip ASR");
        assert!((0.0..=1.0).contains(&t));
        assert!((0.0..=1.0).contains(&f));
    }
}

#[test]
fn attacked_run_perturbs_the_model() {
    // The campaigns must actually reach the global model: an attacked run
    // cannot coincide with the clean trajectory.
    let w = world(44);
    let (_, p_clean) =
        w.trainer()
            .run_returning_params(&w.groups, &FedAvg, SamplingStrategy::ESRCov);
    let (_, p_adv) = w
        .trainer()
        .with_adversary(heavy_plan(w.cfg.seed))
        .run_returning_params(&w.groups, &FedAvg, SamplingStrategy::ESRCov);
    assert_ne!(p_clean, p_adv, "attacks never reached the global model");
}

#[test]
fn flame_filter_intercepts_model_poison() {
    // 5×, sign-flipped uploads point away from every honest update; the
    // cosine-clustering filter must cut at least some of them, and each
    // interception must land in the attack log.
    let w = world(45);
    let plan = AdversaryPlan {
        model_poison_fraction: 0.25,
        ..AdversaryPlan::moderate(w.cfg.seed)
    };
    let groups = w.big_groups();
    let h = w
        .trainer()
        .with_adversary(plan)
        .with_robust_agg(RobustAggRule::FlameFilter)
        .run(&groups, &FedAvg, SamplingStrategy::ESRCov);
    let s = h.attack_summary();
    assert!(s.model_poison > 0, "no poison to filter: {s}");
    assert!(s.filtered_flame > 0, "filter never fired: {s}");
}

#[test]
fn non_finite_gate_reclassifies_overflowed_poison() {
    // An amplification factor beyond f32 range overflows the poisoned
    // update; the reject-non-finite gate catches it and the injection is
    // recorded as an interception instead.
    let w = world(46);
    let plan = AdversaryPlan {
        backdoor_fraction: 0.0,
        label_flip_fraction: 0.0,
        model_poison_fraction: 0.3,
        scale_factor: 1e39, // casts to f32 infinity
        ..AdversaryPlan::moderate(w.cfg.seed)
    };
    let (h, p) = w
        .trainer()
        .with_faults(FaultPlan::none(), FaultPolicy::default(), &w.topo)
        .with_adversary(plan)
        .run_returning_params(&w.groups, &FedAvg, SamplingStrategy::ESRCov);
    let s = h.attack_summary();
    assert!(s.filtered_non_finite > 0, "gate never fired: {s}");
    assert_eq!(s.model_poison, 0, "overflowed poison still logged: {s}");
    assert!(p.iter().all(|v| v.is_finite()), "poison reached the model");
}

#[test]
fn attacks_survive_secure_aggregation() {
    // Poison is applied before masking, so SecAgg must neither strip the
    // attack nor break the run: the attacked secure trajectory diverges
    // from the clean secure one and still logs its campaign.
    let mut w = world(47);
    w.cfg.secure_aggregation = true;
    let (h_clean, p_clean) =
        w.trainer()
            .run_returning_params(&w.groups, &FedAvg, SamplingStrategy::Random);
    let (h_adv, p_adv) = w
        .trainer()
        .with_adversary(heavy_plan(w.cfg.seed))
        .run_returning_params(&w.groups, &FedAvg, SamplingStrategy::Random);
    assert!(h_adv.attack_summary().injected() > 0);
    assert!(!h_adv.asr_records().is_empty());
    assert_ne!(p_clean, p_adv, "SecAgg stripped the attack");
    assert!(h_clean.attack_events().is_empty());
}

#[test]
fn adversary_composes_with_faults_and_churn() {
    // The full gauntlet: churned self-healing + fault injection + a live
    // adversary, twice — completing without panicking and replaying
    // bit-identically.
    let w = world(48);
    let algo = CovGrouping {
        min_group_size: 2,
        max_cov: 1.0,
    };
    let run = || {
        let t = w
            .trainer()
            .with_faults(
                FaultPlan::moderate(w.cfg.seed ^ 0x51),
                FaultPolicy::default(),
                &w.topo,
            )
            .with_churn(
                ChurnPlan {
                    horizon: w.cfg.global_rounds,
                    ..ChurnPlan::moderate(w.cfg.seed ^ 0x52)
                },
                RegroupPolicy::default(),
            )
            .with_adversary(heavy_plan(w.cfg.seed ^ 0x53));
        let (h, p, m) = t
            .run_self_healing(&algo, &w.topo, &FedAvg, SamplingStrategy::ESRCov)
            .expect("self-healing attacked run failed");
        (h, p, m.groups)
    };
    let (h1, p1, g1) = run();
    let (h2, p2, g2) = run();
    assert!(h1.attack_summary().injected() > 0, "nothing attacked");
    assert_eq!(h1, h2);
    assert_eq!(p1, p2);
    assert_eq!(g1, g2);
}

#[test]
fn attacked_checkpoint_resume_is_bit_identical() {
    // The attack log and ASR trajectory ride through checkpoint JSON: a
    // split session must reproduce the straight run's history bit for bit.
    let w = world(49);
    let trainer = w.trainer().with_adversary(heavy_plan(w.cfg.seed));
    let covs: Vec<f32> = w
        .groups
        .iter()
        .map(|g| gfl_core::cov::group_cov(&trainer.partition().label_matrix, g))
        .collect();
    let probs = SamplingStrategy::ESRCov.probabilities(&covs);

    let mut p_straight = trainer
        .model()
        .init_params(&mut gfl_tensor::init::rng(w.cfg.seed));
    let mut ledger = trainer.ledger_for(&FedAvg);
    let mut h_straight = RunHistory::default();
    trainer.run_resumable(
        &w.groups,
        &FedAvg,
        &probs,
        &mut p_straight,
        &mut ledger,
        &mut h_straight,
        0,
        6,
    );

    let mut p_half = trainer
        .model()
        .init_params(&mut gfl_tensor::init::rng(w.cfg.seed));
    let mut ledger2 = trainer.ledger_for(&FedAvg);
    let mut h_half = RunHistory::default();
    trainer.run_resumable(
        &w.groups,
        &FedAvg,
        &probs,
        &mut p_half,
        &mut ledger2,
        &mut h_half,
        0,
        3,
    );
    let cp = Checkpoint::new(p_half, 3, h_half, w.cfg.clone(), ledger2.total());
    let restored = Checkpoint::from_json(&cp.to_json()).expect("checkpoint roundtrip");
    assert!(
        !restored.history.attack_events().is_empty(),
        "attack log lost in checkpoint"
    );
    let mut p_resumed = restored.params.clone();
    let mut h_resumed = restored.history.clone();
    trainer.run_resumable(
        &w.groups,
        &FedAvg,
        &probs,
        &mut p_resumed,
        &mut ledger2,
        &mut h_resumed,
        restored.round,
        3,
    );
    assert_eq!(p_straight, p_resumed);
    assert_eq!(h_straight, h_resumed);
    assert_eq!(
        h_straight.asr_records(),
        h_resumed.asr_records(),
        "ASR trajectory diverged across resume"
    );
}

#[test]
fn attack_defense_telemetry_reaches_the_collector() {
    // gfl-obs surfaces the loop: injected vs filtered counters and ASR
    // gauges exist on attacked runs, and defense counters record the
    // filter's measured work.
    let w = world(50);
    let obs = gfl_obs::TraceCollector::new();
    let plan = AdversaryPlan {
        model_poison_fraction: 0.25,
        ..AdversaryPlan::moderate(w.cfg.seed)
    };
    let groups = w.big_groups();
    let h = w
        .trainer()
        .with_adversary(plan)
        .with_robust_agg(RobustAggRule::FlameFilter)
        .with_observer(std::sync::Arc::clone(&obs))
        .run(&groups, &FedAvg, SamplingStrategy::ESRCov);
    let trace = obs.finish(1);
    let metrics = &trace.summary.as_ref().expect("trace summary").metrics;
    let get = |name: &str| metrics.counter(name).unwrap_or(0);
    assert_eq!(
        get("attacks.injected"),
        h.attack_summary().injected() as u64
    );
    assert_eq!(
        get("attacks.filtered.flame"),
        h.attack_summary().filtered_flame as u64
    );
    assert!(
        get("defense.similarity_evals") > 0,
        "filter work not counted"
    );
    assert!(get("defense.norm_passes") > 0, "clip work not counted");
}

#[test]
fn defense_work_shows_up_in_the_cost_ledger() {
    // Satellite: DefenseCost flows into the emulated round time, so a
    // FLAME-defended run is strictly costlier than the same run without
    // the filter.
    let w = world(51);
    let plan = heavy_plan(w.cfg.seed);
    let groups = w.big_groups();
    let run_cost = |rule: RobustAggRule| {
        let t = w
            .trainer()
            .with_adversary(plan.clone())
            .with_robust_agg(rule);
        let h = t.run(&groups, &FedAvg, SamplingStrategy::ESRCov);
        h.last_record().expect("trajectory").cost
    };
    let plain = run_cost(RobustAggRule::Mean);
    let defended = run_cost(RobustAggRule::FlameFilter);
    assert!(
        defended > plain,
        "defense cost missing from ledger: defended {defended} <= plain {plain}"
    );
}
