//! Property layer for the virtual-population derivation (ISSUE 10,
//! satellite 1).
//!
//! [`VirtualPopulation::shard`] must be *the same function* as the eager
//! generator it claims to factor: for any population shape and any client
//! id, the shard equals [`SyntheticSpec::generate_weighted_with_means`]
//! evaluated at the client's published `(size, mix, means, seed)` — to the
//! bit, features and labels both. The same holds after poisoning: applying
//! a backdoor trigger or label flip to a freshly derived shard yields the
//! rows an eagerly materialized-and-poisoned pipeline would train on.
//! Population-level invariants (histogram consistency, materialize
//! round-trip, buffer obliviousness) are also pinned under arbitrary
//! shapes.

use gfl_data::poison::label_flip;
use gfl_data::{Trigger, VirtualPopulation, VirtualSpec};
use proptest::prelude::*;

/// Arbitrary small population shapes: degenerate single-client
/// populations, fixed-size populations, near-uniform and heavily skewed
/// mixes all reachable.
fn spec_strategy() -> impl Strategy<Value = VirtualSpec> {
    (1usize..40, 0.05f64..4.0, 0u64..u64::MAX).prop_map(|(n, alpha, seed)| {
        let mut s = VirtualSpec::tiny(n, alpha, seed);
        // Cover the min == max degeneracy on a slice of cases.
        if seed % 7 == 0 {
            s.min_size = s.max_size;
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite 1 core: shard(c) ≡ the eager weighted generator at the
    /// client's published derivation inputs.
    #[test]
    fn shard_matches_eager_generator(spec in spec_strategy(), pick in 0usize..1 << 20) {
        let pop = VirtualPopulation::new(spec.clone());
        let c = pick % pop.num_clients();
        let shard = pop.shard(c);
        let eager = spec.data.generate_weighted_with_means(
            pop.client_size(c),
            &pop.client_mix(c),
            pop.means(),
            pop.client_seed(c),
        );
        prop_assert_eq!(shard.labels(), eager.labels());
        prop_assert_eq!(shard.features().as_slice(), eager.features().as_slice());
        prop_assert_eq!(shard.num_classes(), eager.num_classes());
    }

    /// Poisoned rows: trigger + flip applied to a derived shard equal the
    /// same campaign applied to the eager twin, row for row.
    #[test]
    fn poisoned_shards_match_eager_poisoning(
        spec in spec_strategy(),
        pick in 0usize..1 << 20,
        rows in proptest::collection::vec(0usize..1 << 20, 0..8),
        width in 1usize..3,
    ) {
        let pop = VirtualPopulation::new(spec.clone());
        let c = pick % pop.num_clients();
        let n = pop.client_size(c);
        let picked: Vec<usize> = {
            let mut v: Vec<usize> = rows.iter().map(|r| r % n).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let trigger = Trigger::corner(width, 0);

        let poison = |ds: gfl_data::Dataset| {
            let classes = ds.num_classes();
            let (mut features, mut labels) = ds.into_parts();
            trigger.apply(&mut features, &mut labels, &picked);
            label_flip(&mut labels, &picked, 1, 0);
            gfl_data::Dataset::new(features, labels, classes)
        };

        let virt = poison(pop.shard(c));
        let eager = poison(spec.data.generate_weighted_with_means(
            n,
            &pop.client_mix(c),
            pop.means(),
            pop.client_seed(c),
        ));
        prop_assert_eq!(virt.labels(), eager.labels());
        prop_assert_eq!(virt.features().as_slice(), eager.features().as_slice());
    }

    /// The population's O(labels)-per-client summary statistics agree with
    /// full derivation: histogram row c counts shard(c)'s labels, sizes
    /// match and stay in bounds.
    #[test]
    fn summaries_match_derived_shards(spec in spec_strategy(), pick in 0usize..1 << 20) {
        let pop = VirtualPopulation::new(spec.clone());
        let c = pick % pop.num_clients();
        let shard = pop.shard(c);
        prop_assert_eq!(shard.len(), pop.client_size(c));
        prop_assert!((spec.min_size..=spec.max_size).contains(&shard.len()));
        let mut hist = vec![0u32; spec.data.num_classes];
        for &l in shard.labels() {
            hist[l] += 1;
        }
        prop_assert_eq!(pop.label_matrix().client(c), hist.as_slice());
    }

    /// `materialize()` is a faithful lowering: contiguous in-order ranges
    /// whose rows are bitwise the per-client shards.
    #[test]
    fn materialize_roundtrips(spec in spec_strategy()) {
        let pop = VirtualPopulation::new(spec);
        let (data, part) = pop.materialize();
        prop_assert_eq!(data.len(), pop.total_samples());
        prop_assert_eq!(part.num_clients(), pop.num_clients());
        let mut offset = 0usize;
        for c in 0..pop.num_clients() {
            let shard = pop.shard(c);
            for i in 0..shard.len() {
                prop_assert_eq!(data.labels()[offset + i], shard.labels()[i]);
                prop_assert_eq!(data.features().row(offset + i), shard.features().row(i));
            }
            prop_assert_eq!(
                part.indices[c].as_slice(),
                (offset..offset + shard.len()).collect::<Vec<_>>().as_slice()
            );
            offset += shard.len();
        }
        prop_assert_eq!(&part.label_matrix, pop.label_matrix());
    }

    /// Buffer recycling cannot change bits: dirty, over- and under-sized
    /// backing buffers produce the same shard as fresh allocation.
    #[test]
    fn shard_from_parts_is_buffer_oblivious(
        spec in spec_strategy(),
        pick in 0usize..1 << 20,
        junk_f in 0usize..4096,
        junk_l in 0usize..512,
    ) {
        let pop = VirtualPopulation::new(spec);
        let c = pick % pop.num_clients();
        let fresh = pop.shard(c);
        let pooled = pop.shard_from_parts(
            c,
            vec![gfl_tensor::Scalar::NAN; junk_f],
            vec![usize::MAX; junk_l],
        );
        prop_assert_eq!(fresh.labels(), pooled.labels());
        prop_assert_eq!(fresh.features().as_slice(), pooled.features().as_slice());
    }
}
