//! The federated data layout a trainer runs over.
//!
//! Historically the engine owned a materialized `(Dataset, ClientPartition)`
//! pair. [`FedData`] makes that one of two representations: the other is a
//! [`VirtualPopulation`] whose client shards are derived on demand, so the
//! steady-state memory of a run is O(sampled clients), not O(population).
//! Everything the engine's hot paths ask of its data — client sizes, label
//! histograms, total sample mass, dimensions — is answerable from summary
//! statistics in both representations; only the client-update boundary ever
//! touches feature rows.

use crate::{ClientPartition, Dataset, LabelMatrix, VirtualPopulation};

/// Either an eagerly materialized federation or a virtual population.
pub enum FedData {
    /// The eager layout: one dataset, row-index partition per client.
    Materialized {
        /// The pooled training data.
        train: Dataset,
        /// Row indices per client plus the label matrix.
        partition: ClientPartition,
    },
    /// Clients as pure functions of `(seed, id)`; shards derived on demand.
    Virtual(VirtualPopulation),
}

impl FedData {
    /// Number of clients in the federation.
    pub fn num_clients(&self) -> usize {
        match self {
            FedData::Materialized { partition, .. } => partition.num_clients(),
            FedData::Virtual(pop) => pop.num_clients(),
        }
    }

    /// Number of samples held by client `c` — an array/length read in both
    /// representations, never a derivation.
    pub fn client_size(&self, c: usize) -> usize {
        match self {
            FedData::Materialized { partition, .. } => partition.indices[c].len(),
            FedData::Virtual(pop) => pop.client_size(c),
        }
    }

    /// Total training samples across all clients.
    pub fn total_samples(&self) -> usize {
        match self {
            FedData::Materialized { train, .. } => train.len(),
            FedData::Virtual(pop) => pop.total_samples(),
        }
    }

    /// Per-client label histograms — the input to group formation.
    pub fn label_matrix(&self) -> &LabelMatrix {
        match self {
            FedData::Materialized { partition, .. } => &partition.label_matrix,
            FedData::Virtual(pop) => pop.label_matrix(),
        }
    }

    /// Feature width of every sample.
    pub fn feature_dim(&self) -> usize {
        match self {
            FedData::Materialized { train, .. } => train.feature_dim(),
            FedData::Virtual(pop) => pop.spec().data.feature_dim,
        }
    }

    /// Number of label classes.
    pub fn num_classes(&self) -> usize {
        match self {
            FedData::Materialized { train, .. } => train.num_classes(),
            FedData::Virtual(pop) => pop.spec().data.num_classes,
        }
    }

    /// The virtual population, when this is the virtual representation.
    pub fn as_virtual(&self) -> Option<&VirtualPopulation> {
        match self {
            FedData::Virtual(pop) => Some(pop),
            FedData::Materialized { .. } => None,
        }
    }

    /// The eager partition. Panics for virtual populations, whose row
    /// indices do not exist — callers that need per-client rows should go
    /// through [`FedData::client_size`] / the shard derivation instead.
    pub fn partition(&self) -> &ClientPartition {
        match self {
            FedData::Materialized { partition, .. } => partition,
            FedData::Virtual(_) => {
                panic!("virtual populations have no materialized partition")
            }
        }
    }

    /// The eager pooled dataset. Panics for virtual populations.
    pub fn train(&self) -> &Dataset {
        match self {
            FedData::Materialized { train, .. } => train,
            FedData::Virtual(_) => {
                panic!("virtual populations have no materialized training dataset")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionSpec, SyntheticSpec, VirtualSpec};

    #[test]
    fn materialized_accessors_delegate() {
        let data = SyntheticSpec::tiny().generate(300, 5);
        let part = ClientPartition::dirichlet(&data, &PartitionSpec::tiny(0.5, 5));
        let sizes = part.sizes();
        let fed = FedData::Materialized {
            train: data,
            partition: part,
        };
        assert_eq!(fed.num_clients(), sizes.len());
        assert_eq!(fed.client_size(0), sizes[0]);
        assert_eq!(fed.total_samples(), 300);
        assert_eq!(fed.num_classes(), 3);
        assert_eq!(fed.feature_dim(), 4);
        assert!(fed.as_virtual().is_none());
        assert_eq!(fed.partition().num_clients(), sizes.len());
        assert_eq!(fed.train().len(), 300);
    }

    #[test]
    fn virtual_accessors_answer_from_summaries() {
        let pop = VirtualPopulation::new(VirtualSpec::tiny(25, 0.5, 9));
        let total = pop.total_samples();
        let fed = FedData::Virtual(pop);
        assert_eq!(fed.num_clients(), 25);
        assert_eq!(fed.total_samples(), total);
        assert_eq!(fed.num_classes(), 3);
        assert_eq!(fed.feature_dim(), 4);
        assert_eq!(fed.label_matrix().num_clients(), 25);
        let per_client: usize = (0..25).map(|c| fed.client_size(c)).sum();
        assert_eq!(per_client, total);
        assert!(fed.as_virtual().is_some());
    }

    #[test]
    #[should_panic(expected = "no materialized partition")]
    fn virtual_partition_access_panics() {
        let fed = FedData::Virtual(VirtualPopulation::new(VirtualSpec::tiny(4, 0.5, 1)));
        let _ = fed.partition();
    }

    #[test]
    #[should_panic(expected = "no materialized training dataset")]
    fn virtual_train_access_panics() {
        let fed = FedData::Virtual(VirtualPopulation::new(VirtualSpec::tiny(4, 0.5, 1)));
        let _ = fed.train();
    }
}
