//! Virtual client populations: clients as pure functions of `(seed, id)`.
//!
//! The eager pipeline (generate → `ClientPartition::dirichlet`) materializes
//! every client's rows up front, which caps experiments at ~10³ clients. The
//! paper's population-level results (Theorems 1–2, Figs. 5–6) want 10⁵–10⁶
//! clients, of which only the sampled groups ever train in a round. A
//! [`VirtualPopulation`] therefore stores O(population) *summary statistics*
//! (per-client sizes and label histograms — exactly what group formation
//! consumes) and derives any client's feature rows on demand:
//!
//! * client `c`'s RNG seed is a splitmix hash of `(population seed, c)`,
//! * its size is one clipped-normal draw (the `partition.rs` formula,
//!   without the finite-supply cap — a virtual population has no pooled
//!   dataset to exhaust),
//! * its label mix is `Dirichlet(α)` from a salted stream,
//! * its shard is [`SyntheticSpec::generate_weighted_with_means`] against
//!   the population-wide mean constellation, so every client sees the same
//!   learnable task (per-client constellations would make federation
//!   meaningless).
//!
//! Because the weighted generator is split-stream, label histograms are
//! recovered with O(size) integer draws and zero feature work; features are
//! only synthesized for clients an engine round actually samples, into
//! pooled buffers via [`VirtualPopulation::shard_from_parts`].
//!
//! [`VirtualPopulation::materialize`] lowers the whole population to the
//! eager `(Dataset, ClientPartition)` representation with contiguous
//! per-client row ranges — the bridge the equivalence test layer uses to
//! prove virtual ≡ materialized bitwise (see docs/SCALE.md).

use gfl_tensor::init;
use gfl_tensor::{Matrix, Scalar};

use crate::{ClientPartition, Dataset, LabelMatrix, SyntheticSpec};

/// Stream salts separating the per-client derivations. Distinct constants
/// keep the size, mix, and shard streams independent even though they share
/// one client seed.
const CLIENT_SALT: u64 = 0x5649_5254_434C_4E54; // "VIRTCLNT"
const SIZE_SALT: u64 = 0x5649_5254_535A_4531; // "VIRTSZE1"
const MIX_SALT: u64 = 0x5649_5254_4D49_5831; // "VIRTMIX1"
const TEST_SALT: u64 = 0x5649_5254_5445_5354; // "VIRTTEST"

/// SplitMix64 finalizer — decorrelates adjacent client ids into full-width
/// seeds before they feed the ChaCha streams.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Specification of a virtual population: the data model plus the paper's
/// §7.2 population shape (client count, Dirichlet α, size bounds).
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualSpec {
    /// Class-conditional Gaussian data model shared by every client.
    pub data: SyntheticSpec,
    /// Population size (the paper's N; scalable to 10⁶).
    pub num_clients: usize,
    /// Dirichlet concentration α for per-client label mixes.
    pub alpha: f64,
    /// Minimum client dataset size (paper: 20).
    pub min_size: usize,
    /// Maximum client dataset size (paper: 200).
    pub max_size: usize,
    /// Population RNG seed; every client derivation hashes off this.
    pub seed: u64,
}

impl VirtualSpec {
    /// The paper's CIFAR-10 experiment shape (vision data, 20–200 samples
    /// per client) at an arbitrary population size.
    pub fn paper_vision(num_clients: usize, alpha: f64, seed: u64) -> Self {
        Self {
            data: SyntheticSpec::vision_like(),
            num_clients,
            alpha,
            min_size: 20,
            max_size: 200,
            seed,
        }
    }

    /// Small population for unit tests.
    pub fn tiny(num_clients: usize, alpha: f64, seed: u64) -> Self {
        Self {
            data: SyntheticSpec::tiny(),
            num_clients,
            alpha,
            min_size: 5,
            max_size: 20,
            seed,
        }
    }
}

/// A population whose clients exist as summary statistics until sampled.
///
/// Memory: O(num_clients × num_labels) for the label matrix plus
/// O(num_clients) sizes — never O(total samples × feature_dim).
#[derive(Debug, Clone)]
pub struct VirtualPopulation {
    spec: VirtualSpec,
    /// Population-wide class-mean constellation (shared learnable task).
    means: Matrix,
    /// Per-client sample counts.
    sizes: Vec<u32>,
    /// Per-client label histograms — the grouping algorithms' only input.
    label_matrix: LabelMatrix,
    /// Sum of all client sizes.
    total_samples: usize,
}

impl VirtualPopulation {
    /// Builds the population's summary statistics. O(total samples) integer
    /// draws, parallelized over clients; no feature work.
    pub fn new(spec: VirtualSpec) -> Self {
        assert!(spec.num_clients > 0, "need at least one client");
        assert!(spec.min_size <= spec.max_size, "size bounds inverted");
        assert!(spec.alpha > 0.0, "alpha must be positive");
        assert!(spec.data.num_classes > 0 && spec.data.feature_dim > 0);
        let m = spec.data.num_classes;
        let means = spec.data.class_means_for(spec.seed);

        // Chunked parallel build. Each client is a pure function of its id,
        // so per-chunk results concatenate to the same population regardless
        // of thread count or chunk boundaries.
        let chunks =
            gfl_parallel::chunk_ranges(spec.num_clients, gfl_parallel::default_parallelism());
        let spec_ref = &spec;
        let parts: Vec<(Vec<u32>, Vec<Vec<u32>>)> =
            gfl_parallel::par_map(&chunks, |&(start, end)| {
                let mut sizes = Vec::with_capacity(end - start);
                let mut counts = Vec::with_capacity(end - start);
                let mut labels = Vec::new();
                for c in start..end {
                    let (size, hist) = client_stats(spec_ref, c, &mut labels);
                    sizes.push(size as u32);
                    counts.push(hist);
                }
                (sizes, counts)
            });

        let mut sizes = Vec::with_capacity(spec.num_clients);
        let mut counts = Vec::with_capacity(spec.num_clients);
        for (s, c) in parts {
            sizes.extend(s);
            counts.extend(c);
        }
        let total_samples = sizes.iter().map(|&s| s as usize).sum();
        Self {
            spec,
            means,
            sizes,
            label_matrix: LabelMatrix::new(counts, m),
            total_samples,
        }
    }

    pub fn spec(&self) -> &VirtualSpec {
        &self.spec
    }

    /// The shared class-mean constellation.
    pub fn means(&self) -> &Matrix {
        &self.means
    }

    pub fn num_clients(&self) -> usize {
        self.sizes.len()
    }

    /// Client `c`'s sample count — one array read, no derivation.
    pub fn client_size(&self, c: usize) -> usize {
        self.sizes[c] as usize
    }

    /// Per-client label histograms, the input to group formation.
    pub fn label_matrix(&self) -> &LabelMatrix {
        &self.label_matrix
    }

    /// Total samples across the population.
    pub fn total_samples(&self) -> usize {
        self.total_samples
    }

    /// The derivation seed for client `c`'s streams.
    pub fn client_seed(&self, c: usize) -> u64 {
        splitmix(self.spec.seed ^ splitmix(c as u64 ^ CLIENT_SALT))
    }

    /// Client `c`'s Dirichlet(α) label mix, re-derived on demand.
    pub fn client_mix(&self, c: usize) -> Vec<f64> {
        let mut rng = init::rng(self.client_seed(c) ^ MIX_SALT);
        init::dirichlet_symmetric(&mut rng, self.spec.alpha, self.spec.data.num_classes)
    }

    /// Materializes client `c`'s shard: `client_size(c)` rows of
    /// `means[label] + N(0, noise²)`. Bitwise-deterministic in
    /// `(spec.seed, c)`.
    pub fn shard(&self, c: usize) -> Dataset {
        self.shard_from_parts(c, Vec::new(), Vec::new())
    }

    /// [`Self::shard`] building into caller-supplied backing buffers, so
    /// the per-round materialization of sampled clients can recycle
    /// allocations through a [`BufPool`]-style pool. Pass the buffers back
    /// by destructuring the returned dataset with [`Dataset::into_parts`]
    /// and [`Matrix::into_vec`].
    pub fn shard_from_parts(
        &self,
        c: usize,
        mut features: Vec<Scalar>,
        mut labels: Vec<usize>,
    ) -> Dataset {
        let n = self.client_size(c);
        let dim = self.spec.data.feature_dim;
        let mix = self.client_mix(c);
        labels.clear();
        self.spec
            .data
            .weighted_labels_into(n, &mix, self.client_seed(c), &mut labels);
        features.clear();
        features.resize(n * dim, 0.0);
        let mut matrix = Matrix::from_vec(n, dim, features);
        self.spec.data.fill_weighted_features(
            &labels,
            &self.means,
            self.client_seed(c),
            &mut matrix,
        );
        Dataset::new(matrix, labels, self.spec.data.num_classes)
    }

    /// A held-out evaluation set from the population's data model, drawn
    /// from a salted stream disjoint from every client's.
    pub fn test_set(&self, n: usize) -> Dataset {
        self.spec.data.generate(n, self.spec.seed ^ TEST_SALT)
    }

    /// Lowers the population to the eager representation: one dataset whose
    /// rows are the clients' shards concatenated in id order, plus a
    /// [`ClientPartition`] giving client `c` the contiguous row range
    /// `[offset_c, offset_c + size_c)`. Row `offset_c + i` is bitwise
    /// `shard(c)` row `i` — the invariant the equivalence suite pins.
    ///
    /// O(total samples × feature_dim) memory: only for tests and small
    /// populations.
    pub fn materialize(&self) -> (Dataset, ClientPartition) {
        let dim = self.spec.data.feature_dim;
        let mut features = Matrix::zeros(self.total_samples, dim);
        let mut labels = Vec::with_capacity(self.total_samples);
        let mut indices = Vec::with_capacity(self.num_clients());
        let mut offset = 0usize;
        for c in 0..self.num_clients() {
            let shard = self.shard(c);
            let n = shard.len();
            for i in 0..n {
                features
                    .row_mut(offset + i)
                    .copy_from_slice(shard.features().row(i));
            }
            labels.extend_from_slice(shard.labels());
            indices.push((offset..offset + n).collect());
            offset += n;
        }
        let dataset = Dataset::new(features, labels, self.spec.data.num_classes);
        let partition = ClientPartition {
            indices,
            label_matrix: self.label_matrix.clone(),
        };
        (dataset, partition)
    }
}

/// One client's `(size, label histogram)` — the full summary derivation.
/// `labels` is scratch reused across clients.
fn client_stats(spec: &VirtualSpec, c: usize, labels: &mut Vec<usize>) -> (usize, Vec<u32>) {
    let client_seed = splitmix(spec.seed ^ splitmix(c as u64 ^ CLIENT_SALT));
    let size = draw_size(spec, client_seed);
    let mut mix_rng = init::rng(client_seed ^ MIX_SALT);
    let mix = init::dirichlet_symmetric(&mut mix_rng, spec.alpha, spec.data.num_classes);
    labels.clear();
    spec.data
        .weighted_labels_into(size, &mix, client_seed, labels);
    let mut hist = vec![0u32; spec.data.num_classes];
    for &l in labels.iter() {
        hist[l] += 1;
    }
    (size, hist)
}

/// The `partition.rs` clipped-normal size draw, minus the finite-supply cap
/// (a virtual population synthesizes data instead of drawing from a pool).
fn draw_size(spec: &VirtualSpec, client_seed: u64) -> usize {
    let mean = (spec.min_size + spec.max_size) as f32 / 2.0;
    let std = (spec.max_size - spec.min_size).max(1) as f32 / 4.0;
    let mut rng = init::rng(client_seed ^ SIZE_SALT);
    let draw = init::normal(&mut rng, mean, std).round();
    (draw as i64).clamp(spec.min_size as i64, spec.max_size as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic() {
        let a = VirtualPopulation::new(VirtualSpec::tiny(40, 0.5, 7));
        let b = VirtualPopulation::new(VirtualSpec::tiny(40, 0.5, 7));
        assert_eq!(a.sizes, b.sizes);
        assert_eq!(a.label_matrix, b.label_matrix);
        let sa = a.shard(13);
        let sb = b.shard(13);
        assert_eq!(sa.labels(), sb.labels());
        assert_eq!(sa.features().as_slice(), sb.features().as_slice());
    }

    #[test]
    fn sizes_respect_bounds_and_total() {
        let pop = VirtualPopulation::new(VirtualSpec::tiny(100, 0.3, 3));
        let mut total = 0usize;
        for c in 0..pop.num_clients() {
            let s = pop.client_size(c);
            assert!((5..=20).contains(&s), "size {s} out of bounds");
            total += s;
        }
        assert_eq!(total, pop.total_samples());
    }

    #[test]
    fn histograms_match_materialized_shards() {
        let pop = VirtualPopulation::new(VirtualSpec::tiny(30, 0.4, 11));
        for c in 0..pop.num_clients() {
            let shard = pop.shard(c);
            assert_eq!(shard.len(), pop.client_size(c));
            let mut hist = vec![0u32; 3];
            for &l in shard.labels() {
                hist[l] += 1;
            }
            assert_eq!(pop.label_matrix().client(c), hist.as_slice());
        }
    }

    #[test]
    fn shard_from_parts_recycles_buffers() {
        let pop = VirtualPopulation::new(VirtualSpec::tiny(10, 0.5, 5));
        let eager = pop.shard(4);
        let pooled = pop.shard_from_parts(4, vec![9.0; 1000], vec![7usize; 9]);
        assert_eq!(eager.labels(), pooled.labels());
        assert_eq!(eager.features().as_slice(), pooled.features().as_slice());
        let (m, l) = pooled.into_parts();
        assert_eq!(m.into_vec().len(), eager.len() * 4);
        assert_eq!(l.len(), eager.len());
    }

    #[test]
    fn materialize_gives_contiguous_ranges() {
        let pop = VirtualPopulation::new(VirtualSpec::tiny(20, 0.5, 9));
        let (data, part) = pop.materialize();
        assert_eq!(data.len(), pop.total_samples());
        assert_eq!(part.num_clients(), pop.num_clients());
        let mut offset = 0usize;
        for c in 0..pop.num_clients() {
            let shard = pop.shard(c);
            let expect: Vec<usize> = (offset..offset + shard.len()).collect();
            assert_eq!(part.indices[c], expect);
            for i in 0..shard.len() {
                assert_eq!(data.labels()[offset + i], shard.labels()[i]);
                assert_eq!(
                    data.features().row(offset + i),
                    shard.features().row(i),
                    "client {c} row {i}"
                );
            }
            offset += shard.len();
        }
        assert_eq!(&part.label_matrix, pop.label_matrix());
    }

    #[test]
    fn distinct_clients_have_distinct_shards() {
        let pop = VirtualPopulation::new(VirtualSpec::tiny(6, 0.5, 2));
        let a = pop.shard(0);
        let b = pop.shard(1);
        assert_ne!(a.features().as_slice(), b.features().as_slice());
    }

    #[test]
    fn test_set_is_disjoint_stream() {
        let pop = VirtualPopulation::new(VirtualSpec::tiny(4, 1.0, 3));
        let t = pop.test_set(50);
        assert_eq!(t.len(), 50);
        assert_eq!(t.num_classes(), 3);
        let s = pop.shard(0);
        assert_ne!(t.features().row(0), s.features().row(0));
    }
}
