//! Seeded synthetic classification datasets.
//!
//! Each class `c` gets a mean vector drawn once from a seeded RNG and scaled
//! to a separation radius; samples are `mean_c + N(0, noise²)`. With
//! `separation / noise` around 1.0–1.5 the task is learnable but not
//! trivial, so federated training exhibits the gradual accuracy curves the
//! paper's figures show rather than saturating in two rounds.

use gfl_tensor::init::{self, GflRng};
use gfl_tensor::{Matrix, Scalar};
use rand::Rng;

use crate::Dataset;

/// Stream salts for the split-stream weighted generator. Labels and features
/// are drawn from *independent* seeded streams so that a client's label
/// histogram can be recovered in O(n) integer draws without touching the
/// (much wider) feature stream — the property `VirtualPopulation` builds on.
const LABEL_STREAM_SALT: u64 = 0x4C41_4245_4C53_3031; // "LABELS01"
const FEATURE_STREAM_SALT: u64 = 0x4645_4154_5352_3031; // "FEATSR01"

/// Specification of a synthetic class-conditional Gaussian dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Number of label categories (paper: 10 for CIFAR-10, 35 for SC).
    pub num_classes: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Radius of the class-mean constellation.
    pub separation: Scalar,
    /// Per-coordinate sample noise.
    pub noise: Scalar,
}

impl SyntheticSpec {
    /// CIFAR-10 stand-in: 10 classes, 64-dim features. The
    /// separation/noise ratio is tuned so a trained model tops out around
    /// 0.7–0.8 accuracy with a gradual approach — matching the dynamic
    /// range of the paper's CIFAR-10 curves (0.25 → 0.65), which is what
    /// lets methods differentiate. Plays the "relatively heavy load task"
    /// role.
    pub fn vision_like() -> Self {
        Self {
            num_classes: 10,
            feature_dim: 64,
            separation: 2.0,
            noise: 0.9,
        }
    }

    /// Speech-Commands stand-in: 35 classes, 40-dim features. Plays the
    /// paper's "lightweight task" role; more classes makes extreme Dirichlet
    /// skew (α=0.01) possible exactly as in §7.3.2.
    pub fn speech_like() -> Self {
        Self {
            num_classes: 35,
            feature_dim: 40,
            separation: 1.2,
            noise: 0.9,
        }
    }

    /// Tiny spec for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_classes: 3,
            feature_dim: 4,
            separation: 2.0,
            noise: 0.3,
        }
    }

    /// Generates `n` samples with labels drawn from `label_weights`
    /// (uniform when `None`). Deterministic in `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        self.generate_weighted(n, None, seed)
    }

    /// Generates `n` samples whose labels follow `label_weights`.
    ///
    /// The uniform (`None`) path is the historical interleaved-stream
    /// generator and stays byte-stable (golden datasets depend on it). The
    /// weighted path is split-stream: means, labels, and features each come
    /// from their own seeded stream, which makes label histograms and shard
    /// contents independently derivable — see [`Self::weighted_labels_into`]
    /// and [`Self::generate_weighted_with_means`].
    pub fn generate_weighted(&self, n: usize, label_weights: Option<&[f64]>, seed: u64) -> Dataset {
        assert!(self.num_classes > 0 && self.feature_dim > 0);
        match label_weights {
            None => {
                let mut rng = init::rng(seed);
                let means = self.class_means(&mut rng);
                let mut features = Matrix::zeros(n, self.feature_dim);
                let mut labels = Vec::with_capacity(n);
                for i in 0..n {
                    let label = rng.gen_range(0..self.num_classes);
                    labels.push(label);
                    let row = features.row_mut(i);
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = means.get(label, j) + init::normal(&mut rng, 0.0, self.noise);
                    }
                }
                Dataset::new(features, labels, self.num_classes)
            }
            Some(w) => {
                let means = self.class_means_for(seed);
                self.generate_weighted_with_means(n, w, &means, seed)
            }
        }
    }

    /// The class-mean constellation for `seed` — identical to the means the
    /// uniform generator draws as its RNG-stream prefix.
    pub fn class_means_for(&self, seed: u64) -> Matrix {
        self.class_means(&mut init::rng(seed))
    }

    /// Appends `n` labels drawn from `weights` into `out` — exactly the
    /// labels [`Self::generate_weighted_with_means`] would assign for the
    /// same `(n, weights, seed)`. O(n) integer/f64 draws; never touches the
    /// feature stream, so per-client label histograms cost no feature work.
    pub fn weighted_labels_into(&self, n: usize, weights: &[f64], seed: u64, out: &mut Vec<usize>) {
        assert_eq!(weights.len(), self.num_classes, "weight arity mismatch");
        let mut rng = init::rng(seed ^ LABEL_STREAM_SALT);
        out.reserve(n);
        for _ in 0..n {
            out.push(sample_categorical(&mut rng, weights));
        }
    }

    /// Split-stream weighted generation against a caller-supplied mean
    /// constellation. Labels come from the salted label stream, features from
    /// the salted feature stream; `means` is typically shared across a whole
    /// virtual population so every client sees the same learnable task.
    pub fn generate_weighted_with_means(
        &self,
        n: usize,
        weights: &[f64],
        means: &Matrix,
        seed: u64,
    ) -> Dataset {
        assert!(self.num_classes > 0 && self.feature_dim > 0);
        assert_eq!(means.rows(), self.num_classes, "mean arity mismatch");
        assert_eq!(means.cols(), self.feature_dim, "mean width mismatch");
        let mut labels = Vec::new();
        self.weighted_labels_into(n, weights, seed, &mut labels);
        let mut features = Matrix::zeros(n, self.feature_dim);
        self.fill_weighted_features(&labels, means, seed, &mut features);
        Dataset::new(features, labels, self.num_classes)
    }

    /// Fills `features` (already sized `labels.len() × feature_dim`) from the
    /// salted feature stream: row i is `means[label_i] + N(0, noise²)`.
    pub(crate) fn fill_weighted_features(
        &self,
        labels: &[usize],
        means: &Matrix,
        seed: u64,
        features: &mut Matrix,
    ) {
        debug_assert_eq!(features.rows(), labels.len());
        debug_assert_eq!(features.cols(), self.feature_dim);
        let mut rng = init::rng(seed ^ FEATURE_STREAM_SALT);
        for (i, &label) in labels.iter().enumerate() {
            let row = features.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v = means.get(label, j) + init::normal(&mut rng, 0.0, self.noise);
            }
        }
    }

    /// The class-mean constellation, deterministic in the RNG state.
    ///
    /// Means are sampled i.i.d. Gaussian then scaled to the separation
    /// radius, which keeps pairwise distances concentrated for moderate
    /// dimensions (Johnson–Lindenstrauss regime).
    fn class_means(&self, rng: &mut GflRng) -> Matrix {
        let mut means = Matrix::zeros(self.num_classes, self.feature_dim);
        for c in 0..self.num_classes {
            let row = means.row_mut(c);
            init::fill_normal(rng, 1.0, row);
            let norm = gfl_tensor::ops::norm(row);
            if norm > 0.0 {
                gfl_tensor::ops::scale(self.separation / norm, row);
            }
        }
        means
    }
}

/// Samples an index proportional to non-negative weights.
fn sample_categorical(rng: &mut impl Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::tiny();
        let a = spec.generate(50, 9);
        let b = spec.generate(50, 9);
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.features().as_slice(), b.features().as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = SyntheticSpec::tiny();
        let a = spec.generate(50, 1);
        let b = spec.generate(50, 2);
        assert_ne!(a.features().as_slice(), b.features().as_slice());
    }

    #[test]
    fn uniform_labels_cover_all_classes() {
        let d = SyntheticSpec::tiny().generate(300, 3);
        let hist = d.label_histogram();
        assert!(hist.iter().all(|&c| c > 50), "hist {hist:?}");
    }

    #[test]
    fn weighted_labels_respect_weights() {
        let spec = SyntheticSpec::tiny();
        let d = spec.generate_weighted(500, Some(&[1.0, 0.0, 0.0]), 4);
        assert!(d.labels().iter().all(|&l| l == 0));
    }

    #[test]
    fn classes_are_separable_by_nearest_mean() {
        // A sanity check that the task is learnable: classify each sample by
        // the nearest class centroid estimated from the data itself.
        let spec = SyntheticSpec {
            num_classes: 4,
            feature_dim: 16,
            separation: 2.0,
            noise: 0.5,
        };
        let d = spec.generate(400, 5);
        let mut centroids = vec![vec![0.0f32; 16]; 4];
        let mut counts = vec![0usize; 4];
        for i in 0..d.len() {
            let l = d.labels()[i];
            gfl_tensor::ops::add_assign(d.features().row(i), &mut centroids[l]);
            counts[l] += 1;
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            gfl_tensor::ops::scale(1.0 / (*n).max(1) as f32, c);
        }
        let mut correct = 0;
        for i in 0..d.len() {
            let x = d.features().row(i);
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let dist: f32 = x
                    .iter()
                    .zip(centroid.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            correct += usize::from(best == d.labels()[i]);
        }
        let acc = correct as f32 / d.len() as f32;
        assert!(acc > 0.8, "nearest-centroid accuracy {acc}");
    }

    #[test]
    fn weighted_label_stream_matches_full_generation() {
        let spec = SyntheticSpec::tiny();
        let w = [0.2, 0.5, 0.3];
        let d = spec.generate_weighted(200, Some(&w), 17);
        let mut labels = Vec::new();
        spec.weighted_labels_into(200, &w, 17, &mut labels);
        assert_eq!(d.labels(), &labels[..]);
    }

    #[test]
    fn weighted_generation_with_means_round_trips() {
        let spec = SyntheticSpec::tiny();
        let w = [0.1, 0.6, 0.3];
        let means = spec.class_means_for(23);
        let a = spec.generate_weighted(150, Some(&w), 23);
        let b = spec.generate_weighted_with_means(150, &w, &means, 23);
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.features().as_slice(), b.features().as_slice());
    }

    #[test]
    fn weighted_label_prefix_is_stable_in_n() {
        // Shorter draws are a prefix of longer ones — lets summary stats be
        // recovered incrementally without regenerating.
        let spec = SyntheticSpec::tiny();
        let w = [1.0, 2.0, 3.0];
        let mut short = Vec::new();
        let mut long = Vec::new();
        spec.weighted_labels_into(40, &w, 31, &mut short);
        spec.weighted_labels_into(90, &w, 31, &mut long);
        assert_eq!(&long[..40], &short[..]);
    }

    #[test]
    fn presets_have_paper_cardinalities() {
        assert_eq!(SyntheticSpec::vision_like().num_classes, 10);
        assert_eq!(SyntheticSpec::speech_like().num_classes, 35);
    }
}
