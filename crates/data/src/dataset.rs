//! In-memory labeled dataset and minibatch views.

use gfl_tensor::{Matrix, Scalar};
use serde::{Deserialize, Serialize};

/// A dense classification dataset: one feature row per sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
}

/// A borrowed minibatch: gathered feature rows plus their labels.
#[derive(Debug)]
pub struct Batch {
    /// `batch_size × feature_dim` gathered features.
    pub features: Matrix,
    /// Labels aligned with the feature rows.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Builds a dataset, validating label range.
    ///
    /// # Panics
    /// Panics if any label is `>= num_classes` or if the label count does not
    /// match the feature row count.
    pub fn new(features: Matrix, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "feature rows and labels must align"
        );
        assert!(num_classes > 0, "need at least one class");
        for (&l, i) in labels.iter().zip(0..) {
            assert!(l < num_classes, "label {l} at row {i} out of range");
        }
        Self {
            features,
            labels,
            num_classes,
        }
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Consumes the dataset, returning its feature matrix and label vector
    /// so their allocations can be recycled through buffer pools.
    pub fn into_parts(self) -> (Matrix, Vec<usize>) {
        (self.features, self.labels)
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    pub fn features(&self) -> &Matrix {
        &self.features
    }

    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Label histogram of the whole dataset.
    pub fn label_histogram(&self) -> Vec<u32> {
        let mut hist = vec![0u32; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }

    /// Gathers the given sample indices into a minibatch.
    pub fn batch(&self, indices: &[usize]) -> Batch {
        let mut out = Batch::empty();
        self.batch_into(indices, &mut out);
        out
    }

    /// [`Dataset::batch`] into a caller-owned [`Batch`], reusing its feature
    /// and label buffers. The training hot path gathers one minibatch per
    /// SGD step; this keeps those gathers allocation-free after warm-up.
    pub fn batch_into(&self, indices: &[usize], out: &mut Batch) {
        self.features.gather_rows_into(indices, &mut out.features);
        out.labels.clear();
        out.labels.extend(indices.iter().map(|&i| self.labels[i]));
    }

    /// Splits into (train, test) by taking every `k`-th sample into the test
    /// set (deterministic, label-stratified enough for synthetic data).
    pub fn split_holdout(&self, every_k: usize) -> (Dataset, Dataset) {
        assert!(every_k >= 2, "every_k must be at least 2");
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for i in 0..self.len() {
            if i % every_k == 0 {
                test_idx.push(i);
            } else {
                train_idx.push(i);
            }
        }
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Materializes a subset as its own dataset.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let b = self.batch(indices);
        Dataset::new(b.features, b.labels, self.num_classes)
    }
}

impl Batch {
    /// An empty batch, ready to be filled by [`Dataset::batch_into`].
    pub fn empty() -> Self {
        Self {
            features: Matrix::zeros(0, 0),
            labels: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Mean feature vector of the batch (used by tests and defenses).
    pub fn mean_feature(&self) -> Vec<Scalar> {
        let mut mean = vec![0.0; self.features.cols()];
        if self.is_empty() {
            return mean;
        }
        for r in 0..self.features.rows() {
            gfl_tensor::ops::add_assign(self.features.row(r), &mut mean);
        }
        gfl_tensor::ops::scale(1.0 / self.len() as Scalar, &mut mean);
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let features = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f32);
        Dataset::new(features, vec![0, 1, 2, 0, 1, 2], 3)
    }

    #[test]
    fn histogram_counts_labels() {
        assert_eq!(toy().label_histogram(), vec![2, 2, 2]);
    }

    #[test]
    fn batch_gathers_aligned_rows() {
        let d = toy();
        let b = d.batch(&[4, 1]);
        assert_eq!(b.labels, vec![1, 1]);
        assert_eq!(b.features.row(0), &[8.0, 9.0]);
        assert_eq!(b.features.row(1), &[2.0, 3.0]);
    }

    #[test]
    fn batch_into_reuses_buffers_and_matches_batch() {
        let d = toy();
        let mut b = Batch::empty();
        d.batch_into(&[4, 1, 0], &mut b);
        let fresh = d.batch(&[4, 1, 0]);
        assert_eq!(b.labels, fresh.labels);
        assert_eq!(b.features, fresh.features);
        // Refill with a different size: buffers are reused, contents replaced.
        d.batch_into(&[2], &mut b);
        assert_eq!(b.labels, vec![2]);
        assert_eq!(b.features.row(0), d.features().row(2));
    }

    #[test]
    fn split_holdout_partitions_everything() {
        let d = toy();
        let (train, test) = d.split_holdout(3);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 2); // rows 0 and 3
        assert_eq!(test.labels(), &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        let features = Matrix::zeros(1, 2);
        Dataset::new(features, vec![5], 3);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn misaligned_labels_panic() {
        let features = Matrix::zeros(2, 2);
        Dataset::new(features, vec![0], 3);
    }

    #[test]
    fn mean_feature_of_batch() {
        let d = toy();
        let b = d.batch(&[0, 1]);
        assert_eq!(b.mean_feature(), vec![1.0, 2.0]);
    }

    #[test]
    fn empty_batch_is_safe() {
        let d = toy();
        let b = d.batch(&[]);
        assert!(b.is_empty());
        assert_eq!(b.mean_feature(), vec![0.0, 0.0]);
    }
}
