//! Dirichlet label-skew partitioning of a dataset across clients.
//!
//! Reproduces the paper's §7.2 setup: "We split CIFAR-10 data to 300 clients
//! with 20 to 200 (normal distribution ...) data entries each. On each
//! client, the labels follow the Dirichlet distribution with parameter α."
//!
//! The partitioner works in two stages:
//! 1. draw each client's size from a clipped normal,
//! 2. draw each client's label mix from Dirichlet(α) and fill the quota by
//!    sampling (without replacement) from the per-label index pools,
//!    falling back to the closest available label when a pool runs dry
//!    (CIFAR-10's finite per-class supply forces the same compromise the
//!    paper alludes to with "restricted by the available data").

use gfl_tensor::init::{self, GflRng};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Dataset, LabelMatrix};

/// Partitioning parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Number of clients (paper: 300).
    pub num_clients: usize,
    /// Dirichlet concentration α (paper sweeps 0.01–1.0).
    pub alpha: f64,
    /// Minimum client dataset size (paper: 20).
    pub min_size: usize,
    /// Maximum client dataset size (paper: 200).
    pub max_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl PartitionSpec {
    /// The paper's CIFAR-10 experiment shape with a chosen α.
    pub fn paper_vision(alpha: f64, seed: u64) -> Self {
        Self {
            num_clients: 300,
            alpha,
            min_size: 20,
            max_size: 200,
            seed,
        }
    }

    /// Small partition for tests.
    pub fn tiny(alpha: f64, seed: u64) -> Self {
        Self {
            num_clients: 12,
            alpha,
            min_size: 5,
            max_size: 20,
            seed,
        }
    }
}

/// The result of partitioning: per-client sample indices plus label stats.
#[derive(Debug, Clone)]
pub struct ClientPartition {
    /// `indices[i]` = dataset rows owned by client `i`.
    pub indices: Vec<Vec<usize>>,
    /// Per-client label histograms (the grouping algorithms' only input).
    pub label_matrix: LabelMatrix,
}

impl ClientPartition {
    /// Partitions `dataset` according to `spec`.
    pub fn dirichlet(dataset: &Dataset, spec: &PartitionSpec) -> Self {
        assert!(spec.num_clients > 0, "need at least one client");
        assert!(spec.min_size <= spec.max_size, "size bounds inverted");
        assert!(spec.alpha > 0.0, "alpha must be positive");
        let m = dataset.num_classes();
        let mut rng = init::rng(spec.seed);

        // Per-label pools of sample indices, shuffled for unbiased draws.
        let mut pools: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (i, &l) in dataset.labels().iter().enumerate() {
            pools[l].push(i);
        }
        for pool in pools.iter_mut() {
            shuffle(&mut rng, pool);
        }

        let sizes = client_sizes(&mut rng, spec, dataset.len());

        let mut indices: Vec<Vec<usize>> = Vec::with_capacity(spec.num_clients);
        let mut counts: Vec<Vec<u32>> = Vec::with_capacity(spec.num_clients);
        for &size in &sizes {
            let mix = init::dirichlet_symmetric(&mut rng, spec.alpha, m);
            let mut mine = Vec::with_capacity(size);
            let mut hist = vec![0u32; m];
            for _ in 0..size {
                let want = sample_available(&mut rng, &mix, &pools);
                let Some(label) = want else { break };
                let idx = pools[label].pop().expect("pool checked non-empty");
                hist[label] += 1;
                mine.push(idx);
            }
            indices.push(mine);
            counts.push(hist);
        }

        Self {
            indices,
            label_matrix: LabelMatrix::new(counts, m),
        }
    }

    pub fn num_clients(&self) -> usize {
        self.indices.len()
    }

    /// Sizes of every client dataset.
    pub fn sizes(&self) -> Vec<usize> {
        self.indices.iter().map(Vec::len).collect()
    }
}

/// Draws client sizes from a clipped normal centered between the bounds,
/// additionally capped so the sum does not exceed the available data.
fn client_sizes(rng: &mut GflRng, spec: &PartitionSpec, available: usize) -> Vec<usize> {
    let mean = (spec.min_size + spec.max_size) as f32 / 2.0;
    let std = (spec.max_size - spec.min_size).max(1) as f32 / 4.0;
    let mut sizes = Vec::with_capacity(spec.num_clients);
    let mut remaining = available;
    for _ in 0..spec.num_clients {
        let draw = init::normal(rng, mean, std).round();
        let clipped = (draw as i64).clamp(spec.min_size as i64, spec.max_size as i64) as usize;
        let take = clipped.min(remaining);
        sizes.push(take);
        remaining -= take;
    }
    sizes
}

/// Samples a label from `mix`, restricted to labels whose pools are
/// non-empty. Returns `None` when every pool is exhausted.
fn sample_available(rng: &mut impl Rng, mix: &[f64], pools: &[Vec<usize>]) -> Option<usize> {
    let total: f64 = mix
        .iter()
        .zip(pools.iter())
        .filter(|(_, p)| !p.is_empty())
        .map(|(&w, _)| w)
        .sum();
    if total > 0.0 {
        let mut t = rng.gen::<f64>() * total;
        for (label, (&w, pool)) in mix.iter().zip(pools.iter()).enumerate() {
            if pool.is_empty() {
                continue;
            }
            t -= w;
            if t <= 0.0 {
                return Some(label);
            }
        }
    }
    // Preferred labels all dry: fall back to any non-empty pool.
    let alive: Vec<usize> = pools
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.is_empty())
        .map(|(l, _)| l)
        .collect();
    if alive.is_empty() {
        None
    } else {
        Some(alive[rng.gen_range(0..alive.len())])
    }
}

/// Fisher–Yates shuffle.
fn shuffle<T>(rng: &mut impl Rng, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticSpec;

    fn toy_dataset(n: usize) -> Dataset {
        SyntheticSpec::tiny().generate(n, 11)
    }

    #[test]
    fn partition_is_disjoint_and_within_bounds() {
        let d = toy_dataset(600);
        let spec = PartitionSpec::tiny(0.5, 1);
        let p = ClientPartition::dirichlet(&d, &spec);
        assert_eq!(p.num_clients(), spec.num_clients);
        let mut seen = std::collections::HashSet::new();
        for client in &p.indices {
            assert!(client.len() <= spec.max_size);
            for &i in client {
                assert!(i < d.len());
                assert!(seen.insert(i), "sample {i} assigned twice");
            }
        }
    }

    #[test]
    fn label_matrix_matches_indices() {
        let d = toy_dataset(600);
        let p = ClientPartition::dirichlet(&d, &PartitionSpec::tiny(0.3, 2));
        for (i, client) in p.indices.iter().enumerate() {
            let mut hist = vec![0u32; d.num_classes()];
            for &idx in client {
                hist[d.labels()[idx]] += 1;
            }
            assert_eq!(p.label_matrix.client(i), hist.as_slice());
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let d = toy_dataset(400);
        let a = ClientPartition::dirichlet(&d, &PartitionSpec::tiny(0.2, 7));
        let b = ClientPartition::dirichlet(&d, &PartitionSpec::tiny(0.2, 7));
        assert_eq!(a.indices, b.indices);
    }

    #[test]
    fn smaller_alpha_is_more_skewed() {
        // Measure average per-client CoV of label histograms; Dirichlet with
        // smaller alpha must produce more skewed clients.
        let spec_vision = SyntheticSpec {
            num_classes: 10,
            feature_dim: 8,
            separation: 1.0,
            noise: 1.0,
        };
        let d = spec_vision.generate(4000, 21);
        let avg_cov = |alpha: f64| {
            let p = ClientPartition::dirichlet(
                &d,
                &PartitionSpec {
                    num_clients: 30,
                    alpha,
                    min_size: 20,
                    max_size: 60,
                    seed: 5,
                },
            );
            let lm = &p.label_matrix;
            (0..lm.num_clients())
                .map(|i| {
                    let h: Vec<f32> = lm.client(i).iter().map(|&c| c as f32).collect();
                    gfl_tensor::stats::coefficient_of_variation(&h)
                })
                .sum::<f32>()
                / lm.num_clients() as f32
        };
        let skewed = avg_cov(0.05);
        let balanced = avg_cov(5.0);
        assert!(
            skewed > balanced * 1.5,
            "alpha=0.05 CoV {skewed} should exceed alpha=5 CoV {balanced}"
        );
    }

    #[test]
    fn sizes_respect_min_when_data_ample() {
        let d = toy_dataset(1000);
        let spec = PartitionSpec::tiny(1.0, 3);
        let p = ClientPartition::dirichlet(&d, &spec);
        for s in p.sizes() {
            assert!(s >= spec.min_size, "size {s} below min");
        }
    }

    #[test]
    fn exhausted_data_yields_truncated_clients() {
        let d = toy_dataset(30); // far less than 12 clients × 5 min
        let p = ClientPartition::dirichlet(&d, &PartitionSpec::tiny(1.0, 4));
        let total: usize = p.sizes().iter().sum();
        assert_eq!(total, 30, "every sample must be assigned at most once");
    }
}
