//! Shard-based pathological partitioning — the McMahan et al. (FedAvg)
//! non-IID construction, provided alongside the paper's Dirichlet scheme.
//!
//! Samples are sorted by label, cut into `shards_per_client × num_clients`
//! contiguous shards, and each client receives `shards_per_client` shards
//! uniformly at random. With 2 shards per client every client sees at most
//! 2 labels — the most extreme classic skew. Useful for stress-testing the
//! grouping algorithms beyond the Dirichlet regime the paper sweeps.

use gfl_tensor::init::GflRng;
use rand::Rng;

use crate::{ClientPartition, Dataset, LabelMatrix};

/// Partitions `dataset` into shards and deals them to clients.
///
/// # Panics
/// Panics if there are fewer samples than shards.
pub fn shard_partition(
    dataset: &Dataset,
    num_clients: usize,
    shards_per_client: usize,
    rng: &mut GflRng,
) -> ClientPartition {
    assert!(num_clients > 0 && shards_per_client > 0);
    let total_shards = num_clients * shards_per_client;
    assert!(
        dataset.len() >= total_shards,
        "need at least one sample per shard"
    );

    // Sort sample indices by label (stable → deterministic).
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    order.sort_by_key(|&i| (dataset.labels()[i], i));

    // Cut into near-equal contiguous shards.
    let ranges = gfl_parallel::chunk_ranges(order.len(), total_shards);

    // Deal shards to clients in random order.
    let mut shard_ids: Vec<usize> = (0..total_shards).collect();
    for i in (1..total_shards).rev() {
        let j = rng.gen_range(0..=i);
        shard_ids.swap(i, j);
    }

    let m = dataset.num_classes();
    let mut indices: Vec<Vec<usize>> = vec![Vec::new(); num_clients];
    let mut counts: Vec<Vec<u32>> = vec![vec![0; m]; num_clients];
    for (k, &shard) in shard_ids.iter().enumerate() {
        let client = k / shards_per_client;
        let (s, e) = ranges[shard];
        for &sample in &order[s..e] {
            indices[client].push(sample);
            counts[client][dataset.labels()[sample]] += 1;
        }
    }

    ClientPartition {
        indices,
        label_matrix: LabelMatrix::new(counts, m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticSpec;
    use gfl_tensor::init;

    #[test]
    fn partition_is_disjoint_and_complete() {
        let d = SyntheticSpec::tiny().generate(300, 1);
        let p = shard_partition(&d, 10, 3, &mut init::rng(2));
        assert_eq!(p.num_clients(), 10);
        let mut seen = vec![false; d.len()];
        for client in &p.indices {
            for &i in client {
                assert!(!seen[i], "sample {i} dealt twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every sample must be dealt");
    }

    #[test]
    fn two_shards_bound_labels_per_client() {
        // 3 labels, many samples: each shard is within one or two labels,
        // so 2 shards/client ⇒ at most 4 distinct labels, typically ≤ 2.
        let d = SyntheticSpec::tiny().generate(600, 3);
        let p = shard_partition(&d, 20, 2, &mut init::rng(4));
        let lm = &p.label_matrix;
        let mut label_counts: Vec<usize> = (0..lm.num_clients())
            .map(|c| lm.client(c).iter().filter(|&&x| x > 0).count())
            .collect();
        label_counts.sort_unstable();
        // Median client sees at most 2 labels — the classic construction.
        assert!(
            label_counts[label_counts.len() / 2] <= 2,
            "{label_counts:?}"
        );
    }

    #[test]
    fn shard_skew_exceeds_mild_dirichlet() {
        let d = SyntheticSpec::tiny().generate(600, 5);
        let shards = shard_partition(&d, 12, 2, &mut init::rng(6));
        let dirichlet = ClientPartition::dirichlet(
            &d,
            &crate::PartitionSpec {
                num_clients: 12,
                alpha: 10.0,
                min_size: 10,
                max_size: 60,
                seed: 6,
            },
        );
        let avg_cov = |p: &ClientPartition| {
            let lm = &p.label_matrix;
            (0..lm.num_clients())
                .map(|c| {
                    let h: Vec<f32> = lm.client(c).iter().map(|&x| x as f32).collect();
                    gfl_tensor::stats::coefficient_of_variation(&h)
                })
                .sum::<f32>()
                / lm.num_clients() as f32
        };
        assert!(avg_cov(&shards) > avg_cov(&dirichlet) * 1.3);
    }

    #[test]
    fn deterministic_in_seed() {
        let d = SyntheticSpec::tiny().generate(200, 7);
        let a = shard_partition(&d, 8, 2, &mut init::rng(1));
        let b = shard_partition(&d, 8, 2, &mut init::rng(1));
        assert_eq!(a.indices, b.indices);
    }

    #[test]
    #[should_panic(expected = "one sample per shard")]
    fn too_few_samples_panics() {
        let d = SyntheticSpec::tiny().generate(5, 8);
        shard_partition(&d, 10, 2, &mut init::rng(9));
    }
}
