//! The label matrix `L` of §5.1: `L[i][j]` = number of samples of label `j`
//! held by client `i`.
//!
//! This is the *only* information the paper's grouping algorithms may use —
//! "to compute the CoV of a group, we only need to know the data label
//! distributions from users in that group, without any information of their
//! local data, model, nor gradient" (§5.1). Keeping it a standalone type
//! enforces that boundary in the code: grouping code depends on
//! `LabelMatrix`, never on `Dataset`.

use gfl_tensor::Scalar;
use serde::{Deserialize, Serialize};

/// Per-client label histograms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelMatrix {
    /// `counts[i][j]`: samples of label `j` on client `i`.
    counts: Vec<Vec<u32>>,
    num_labels: usize,
}

impl LabelMatrix {
    /// Builds from explicit per-client histograms.
    ///
    /// # Panics
    /// Panics if rows have inconsistent widths.
    pub fn new(counts: Vec<Vec<u32>>, num_labels: usize) -> Self {
        for (i, row) in counts.iter().enumerate() {
            assert_eq!(row.len(), num_labels, "client {i} histogram width");
        }
        Self { counts, num_labels }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.counts.len()
    }

    /// Number of label categories `m`.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Histogram of one client.
    pub fn client(&self, i: usize) -> &[u32] {
        &self.counts[i]
    }

    /// Total samples held by client `i` (the paper's `n_i`).
    pub fn client_total(&self, i: usize) -> u64 {
        self.counts[i].iter().map(|&c| c as u64).sum()
    }

    /// Total samples across all clients (the paper's `n`).
    pub fn total(&self) -> u64 {
        (0..self.num_clients()).map(|i| self.client_total(i)).sum()
    }

    /// Combined histogram of a set of clients (a group's label distribution).
    pub fn group_histogram(&self, members: &[usize]) -> Vec<u64> {
        let mut hist = vec![0u64; self.num_labels];
        for &i in members {
            for (h, &c) in hist.iter_mut().zip(self.counts[i].iter()) {
                *h += c as u64;
            }
        }
        hist
    }

    /// Adds client `i`'s histogram into an existing accumulator; the greedy
    /// CoV-Grouping inner loop uses this to avoid recomputing group
    /// histograms from scratch for every candidate.
    pub fn add_client_into(&self, i: usize, hist: &mut [u64]) {
        assert_eq!(hist.len(), self.num_labels);
        for (h, &c) in hist.iter_mut().zip(self.counts[i].iter()) {
            *h += c as u64;
        }
    }

    /// Removes client `i`'s histogram from an accumulator.
    pub fn remove_client_from(&self, i: usize, hist: &mut [u64]) {
        assert_eq!(hist.len(), self.num_labels);
        for (h, &c) in hist.iter_mut().zip(self.counts[i].iter()) {
            *h -= c as u64;
        }
    }

    /// The global label distribution as probabilities.
    pub fn global_distribution(&self) -> Vec<Scalar> {
        let members: Vec<usize> = (0..self.num_clients()).collect();
        let hist = self.group_histogram(&members);
        let floats: Vec<Scalar> = hist.iter().map(|&h| h as Scalar).collect();
        gfl_tensor::stats::normalize(&floats)
    }

    /// Client `i`'s label distribution as probabilities.
    pub fn client_distribution(&self, i: usize) -> Vec<Scalar> {
        let floats: Vec<Scalar> = self.counts[i].iter().map(|&h| h as Scalar).collect();
        gfl_tensor::stats::normalize(&floats)
    }

    /// Restricts the matrix to a subset of clients, renumbering them
    /// `0..members.len()` (used to scope grouping to one edge server).
    pub fn restrict(&self, members: &[usize]) -> LabelMatrix {
        LabelMatrix::new(
            members.iter().map(|&i| self.counts[i].clone()).collect(),
            self.num_labels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> LabelMatrix {
        LabelMatrix::new(
            vec![
                vec![10, 0, 0],
                vec![0, 10, 0],
                vec![0, 0, 10],
                vec![3, 3, 4],
            ],
            3,
        )
    }

    #[test]
    fn totals() {
        let m = toy();
        assert_eq!(m.client_total(0), 10);
        assert_eq!(m.client_total(3), 10);
        assert_eq!(m.total(), 40);
    }

    #[test]
    fn group_histogram_merges() {
        let m = toy();
        assert_eq!(m.group_histogram(&[0, 1]), vec![10, 10, 0]);
        assert_eq!(m.group_histogram(&[0, 1, 2]), vec![10, 10, 10]);
        assert_eq!(m.group_histogram(&[]), vec![0, 0, 0]);
    }

    #[test]
    fn incremental_add_remove_roundtrip() {
        let m = toy();
        let mut hist = m.group_histogram(&[0, 3]);
        m.add_client_into(1, &mut hist);
        assert_eq!(hist, m.group_histogram(&[0, 1, 3]));
        m.remove_client_from(0, &mut hist);
        assert_eq!(hist, m.group_histogram(&[1, 3]));
    }

    #[test]
    fn global_distribution_is_uniform_for_balanced_matrix() {
        let m = toy();
        let g = m.global_distribution();
        // 13,13,14 over 40
        assert!((g[0] - 13.0 / 40.0).abs() < 1e-6);
        assert!((g.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn restrict_renumbers() {
        let m = toy();
        let r = m.restrict(&[2, 3]);
        assert_eq!(r.num_clients(), 2);
        assert_eq!(r.client(0), &[0, 0, 10]);
        assert_eq!(r.client(1), &[3, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "histogram width")]
    fn inconsistent_widths_panic() {
        LabelMatrix::new(vec![vec![1, 2], vec![1]], 2);
    }
}
