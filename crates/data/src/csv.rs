//! CSV dataset loading — the bring-your-own-data path.
//!
//! The reproduction ships synthetic generators, but a downstream user will
//! want to run the pipeline on real features (e.g. pre-extracted CIFAR-10
//! embeddings). Format: one sample per line, comma-separated feature
//! values with the **label as the last column**; an optional header line
//! is skipped automatically when its first field does not parse as a
//! number. Labels may be arbitrary non-negative integers; they are
//! compacted to `0..num_classes` preserving order of first appearance.

use std::io::BufRead;
use std::path::Path;

use gfl_tensor::{Matrix, Scalar};

use crate::Dataset;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    Io(std::io::Error),
    /// (line number, message)
    Parse(usize, String),
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            CsvError::Empty => write!(f, "no samples in input"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parses a dataset from any reader in last-column-label CSV form.
pub fn read_dataset(reader: impl BufRead) -> Result<Dataset, CsvError> {
    let mut features: Vec<Scalar> = Vec::new();
    let mut raw_labels: Vec<u64> = Vec::new();
    let mut dim: Option<usize> = None;

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(CsvError::Parse(
                line_no,
                format!(
                    "need at least one feature and a label, got {}",
                    fields.len()
                ),
            ));
        }
        // Header detection: first field of the first row isn't numeric.
        if dim.is_none() && fields[0].parse::<f64>().is_err() {
            continue;
        }
        let this_dim = fields.len() - 1;
        match dim {
            None => dim = Some(this_dim),
            Some(d) if d != this_dim => {
                return Err(CsvError::Parse(
                    line_no,
                    format!("expected {d} features, got {this_dim}"),
                ));
            }
            _ => {}
        }
        for f in &fields[..this_dim] {
            let v: f64 = f
                .parse()
                .map_err(|_| CsvError::Parse(line_no, format!("bad feature value '{f}'")))?;
            features.push(v as Scalar);
        }
        let label: u64 = fields[this_dim]
            .parse()
            .map_err(|_| CsvError::Parse(line_no, format!("bad label '{}'", fields[this_dim])))?;
        raw_labels.push(label);
    }

    let dim = dim.ok_or(CsvError::Empty)?;
    if raw_labels.is_empty() {
        return Err(CsvError::Empty);
    }

    // Compact labels to 0..k preserving first-appearance order.
    let mut mapping: Vec<u64> = Vec::new();
    let labels: Vec<usize> = raw_labels
        .iter()
        .map(|&l| {
            if let Some(pos) = mapping.iter().position(|&m| m == l) {
                pos
            } else {
                mapping.push(l);
                mapping.len() - 1
            }
        })
        .collect();

    let rows = labels.len();
    Ok(Dataset::new(
        Matrix::from_vec(rows, dim, features),
        labels,
        mapping.len(),
    ))
}

/// Loads a dataset from a CSV file on disk.
pub fn load_dataset(path: impl AsRef<Path>) -> Result<Dataset, CsvError> {
    let file = std::fs::File::open(path)?;
    read_dataset(std::io::BufReader::new(file))
}

/// Writes a dataset in the same last-column-label format (round-trip
/// partner of [`read_dataset`], used for exporting synthetic data).
pub fn write_dataset(dataset: &Dataset, mut w: impl std::io::Write) -> std::io::Result<()> {
    for r in 0..dataset.len() {
        let row = dataset.features().row(r);
        for v in row {
            write!(w, "{v},")?;
        }
        writeln!(w, "{}", dataset.labels()[r])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticSpec;
    use std::io::Cursor;

    #[test]
    fn parses_basic_csv() {
        let input = "1.0,2.0,0\n3.0,4.0,1\n5.0,6.0,0\n";
        let d = read_dataset(Cursor::new(input)).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.feature_dim(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.labels(), &[0, 1, 0]);
        assert_eq!(d.features().row(1), &[3.0, 4.0]);
    }

    #[test]
    fn skips_header_comments_and_blank_lines() {
        let input = "f1,f2,label\n# comment\n\n1.0,2.0,7\n3.0,4.0,9\n";
        let d = read_dataset(Cursor::new(input)).unwrap();
        assert_eq!(d.len(), 2);
        // labels 7 and 9 compacted to 0 and 1
        assert_eq!(d.labels(), &[0, 1]);
    }

    #[test]
    fn rejects_ragged_rows() {
        let input = "1.0,2.0,0\n1.0,0\n";
        let err = read_dataset(Cursor::new(input)).unwrap_err();
        assert!(matches!(err, CsvError::Parse(2, _)), "{err}");
    }

    #[test]
    fn rejects_bad_values() {
        let err = read_dataset(Cursor::new("1.0,x,0\n")).unwrap_err();
        assert!(err.to_string().contains("bad feature"));
        let err = read_dataset(Cursor::new("1.0,2.0,cat\n")).unwrap_err();
        assert!(err.to_string().contains("bad label"));
    }

    #[test]
    fn empty_input_errors() {
        assert!(matches!(
            read_dataset(Cursor::new("")).unwrap_err(),
            CsvError::Empty
        ));
        assert!(matches!(
            read_dataset(Cursor::new("a,b,label\n")).unwrap_err(),
            CsvError::Empty
        ));
    }

    #[test]
    fn roundtrip_preserves_synthetic_dataset() {
        let d = SyntheticSpec::tiny().generate(40, 5);
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        let back = read_dataset(Cursor::new(buf)).unwrap();
        assert_eq!(back.len(), d.len());
        assert_eq!(back.feature_dim(), d.feature_dim());
        assert_eq!(back.num_classes(), d.num_classes());
        for r in 0..d.len() {
            for (a, b) in back.features().row(r).iter().zip(d.features().row(r)) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn file_loading_works() {
        let d = SyntheticSpec::tiny().generate(10, 6);
        let path = std::env::temp_dir().join("gfl_csv_test.csv");
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(back.len(), 10);
        let _ = std::fs::remove_file(path);
    }
}
