//! Data substrate for the Group-FEL reproduction.
//!
//! The paper evaluates on CIFAR-10 (10 classes) and Speech Commands (35
//! classes), partitioned across 300 clients with 20–200 samples each and
//! Dirichlet(α) label skew. Neither dataset ships with this repository, so
//! [`synthetic`] generates class-conditional Gaussian datasets with the same
//! label cardinalities — the non-IID phenomena under study are functions of
//! the *label distribution geometry*, which the substitution preserves
//! exactly (see DESIGN.md §1).
//!
//! * [`Dataset`] — dense feature matrix + labels + class count.
//! * [`synthetic`] — seeded generators (`vision_like`, `speech_like`).
//! * [`partition`] — Dirichlet label-skew client partitioner (§7.2 setup).
//! * [`LabelMatrix`] — per-client label histograms `L[i][j]` (§5.1), the
//!   only statistic the grouping algorithms are allowed to see.

pub mod csv;
pub mod dataset;
pub mod feddata;
pub mod label_matrix;
pub mod partition;
pub mod poison;
pub mod shards;
pub mod synthetic;
pub mod virtual_pop;

pub use csv::{load_dataset, read_dataset, write_dataset};
pub use dataset::{Batch, Dataset};
pub use feddata::FedData;
pub use label_matrix::LabelMatrix;
pub use partition::{ClientPartition, PartitionSpec};
pub use poison::Trigger;
pub use shards::shard_partition;
pub use synthetic::SyntheticSpec;
pub use virtual_pop::{VirtualPopulation, VirtualSpec};
