//! Data-level attack injection for the backdoor/defense extension
//! experiments: label flipping and trigger-pattern backdoors.
//!
//! The paper's group pipeline pays for backdoor detection every group
//! round (Fig. 2a); these injectors create the adversarial clients that
//! make the defense observable end to end.

use gfl_tensor::init::GflRng;
use gfl_tensor::{Matrix, Scalar};
use rand::Rng;

use crate::Dataset;

/// Flips every sample of `from` to label `to` on the given dataset rows.
/// Returns how many labels were flipped.
pub fn label_flip(labels: &mut [usize], rows: &[usize], from: usize, to: usize) -> usize {
    let mut flipped = 0;
    for &r in rows {
        if labels[r] == from {
            labels[r] = to;
            flipped += 1;
        }
    }
    flipped
}

/// A pixel/feature-space backdoor trigger: fixed offsets added to a fixed
/// subset of coordinates, with all triggered samples relabelled to the
/// attacker's target class.
#[derive(Debug, Clone)]
pub struct Trigger {
    /// (coordinate, additive value) pairs.
    pub pattern: Vec<(usize, Scalar)>,
    /// The label every triggered sample is forced to.
    pub target_label: usize,
}

impl Trigger {
    /// A simple deterministic trigger touching `width` coordinates.
    pub fn corner(width: usize, target_label: usize) -> Self {
        Self {
            pattern: (0..width).map(|i| (i, 2.5)).collect(),
            target_label,
        }
    }

    /// Applies the trigger to the given rows of a feature matrix + labels.
    pub fn apply(&self, features: &mut Matrix, labels: &mut [usize], rows: &[usize]) {
        for &r in rows {
            let row = features.row_mut(r);
            for &(c, v) in &self.pattern {
                assert!(c < row.len(), "trigger coordinate out of range");
                row[c] += v;
            }
            labels[r] = self.target_label;
        }
    }

    /// Builds the *attack-success* evaluation set: clean samples from
    /// `dataset` (excluding the target class), triggered. A backdoored
    /// model classifies these as `target_label`; a clean model does not.
    pub fn attack_eval_set(&self, dataset: &Dataset, n: usize, rng: &mut GflRng) -> Dataset {
        let candidates: Vec<usize> = (0..dataset.len())
            .filter(|&i| dataset.labels()[i] != self.target_label)
            .collect();
        assert!(!candidates.is_empty(), "no non-target samples");
        let picks: Vec<usize> = (0..n)
            .map(|_| candidates[rng.gen_range(0..candidates.len())])
            .collect();
        let batch = dataset.batch(&picks);
        let mut features = batch.features;
        let mut labels = batch.labels;
        let rows: Vec<usize> = (0..labels.len()).collect();
        self.apply(&mut features, &mut labels, &rows);
        Dataset::new(features, labels, dataset.num_classes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticSpec;
    use gfl_tensor::init;

    #[test]
    fn label_flip_only_touches_matching_rows() {
        let mut labels = vec![0, 1, 0, 2, 0];
        let flipped = label_flip(&mut labels, &[0, 1, 2], 0, 2);
        assert_eq!(flipped, 2);
        assert_eq!(labels, vec![2, 1, 2, 2, 0]);
    }

    #[test]
    fn trigger_changes_features_and_labels() {
        let d = SyntheticSpec::tiny().generate(20, 1);
        let mut features = d.features().clone();
        let mut labels = d.labels().to_vec();
        let before = features.row(3).to_vec();
        let trig = Trigger::corner(2, 1);
        trig.apply(&mut features, &mut labels, &[3]);
        assert_eq!(labels[3], 1);
        assert!((features.get(3, 0) - before[0] - 2.5).abs() < 1e-6);
        assert!((features.get(3, 1) - before[1] - 2.5).abs() < 1e-6);
        assert_eq!(features.get(3, 2), before[2]);
    }

    #[test]
    fn attack_eval_set_is_all_target_labeled_and_triggered() {
        let d = SyntheticSpec::tiny().generate(100, 2);
        let trig = Trigger::corner(2, 0);
        let eval = trig.attack_eval_set(&d, 30, &mut init::rng(3));
        assert_eq!(eval.len(), 30);
        assert!(eval.labels().iter().all(|&l| l == 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_trigger_panics() {
        let d = SyntheticSpec::tiny().generate(5, 4);
        let mut features = d.features().clone();
        let mut labels = d.labels().to_vec();
        Trigger {
            pattern: vec![(999, 1.0)],
            target_label: 0,
        }
        .apply(&mut features, &mut labels, &[0]);
    }
}
