//! Seeded random initialization and sampling primitives.
//!
//! Everything random in the reproduction flows through ChaCha8 seeded RNGs so
//! experiments are bit-reproducible. Besides weight initializers, this module
//! implements the distribution samplers the data pipeline needs but that the
//! allowed crate set does not provide: standard normal (Box–Muller), Gamma
//! (Marsaglia–Tsang), and Dirichlet (normalized Gammas). Dirichlet(α) label
//! skew is the paper's central non-IID knob (§7.2).

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{Matrix, Scalar};

/// The crate-standard deterministic RNG.
pub type GflRng = ChaCha8Rng;

/// Creates the standard deterministic RNG from a seed.
pub fn rng(seed: u64) -> GflRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives an independent child RNG stream; used to give each client its own
/// reproducible stream regardless of scheduling order.
pub fn child_rng(rng: &mut GflRng, stream: u64) -> GflRng {
    let mut seed = [0u8; 32];
    rng.fill_bytes(&mut seed);
    // Mix the stream id into the seed so children with the same parent state
    // but different ids diverge.
    for (i, b) in stream.to_le_bytes().iter().enumerate() {
        seed[i] ^= b;
    }
    ChaCha8Rng::from_seed(seed)
}

/// Samples a standard normal via Box–Muller.
pub fn standard_normal(rng: &mut impl Rng) -> Scalar {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        return (r * theta.cos()) as Scalar;
    }
}

/// Samples `N(mean, std²)`.
pub fn normal(rng: &mut impl Rng, mean: Scalar, std: Scalar) -> Scalar {
    mean + std * standard_normal(rng)
}

/// Samples Gamma(shape, 1) via Marsaglia–Tsang; handles shape < 1 via the
/// boost `Gamma(a) = Gamma(a+1) · U^{1/a}`.
pub fn gamma(rng: &mut impl Rng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng) as f64;
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Samples a Dirichlet(α·1) distribution of dimension `dim`.
///
/// Smaller `alpha` concentrates mass on few coordinates — exactly the
/// label-skew behaviour the paper sweeps (α ∈ {0.01, 0.1, 0.5, 1.0}).
pub fn dirichlet_symmetric(rng: &mut impl Rng, alpha: f64, dim: usize) -> Vec<f64> {
    assert!(dim > 0, "dirichlet dimension must be positive");
    let mut draws: Vec<f64> = (0..dim).map(|_| gamma(rng, alpha)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        // Degenerate draw (possible for very small alpha in f64): put all
        // mass on a uniformly random coordinate, matching the alpha→0 limit.
        let hot = rng.gen_range(0..dim);
        draws.iter_mut().for_each(|d| *d = 0.0);
        draws[hot] = 1.0;
        return draws;
    }
    draws.iter_mut().for_each(|d| *d /= sum);
    draws
}

/// He (Kaiming) initialization for a `fan_out × fan_in` weight matrix:
/// `N(0, 2/fan_in)`. Appropriate for ReLU networks.
pub fn he_matrix(rng: &mut impl Rng, fan_out: usize, fan_in: usize) -> Matrix {
    let std = (2.0 / fan_in.max(1) as Scalar).sqrt();
    Matrix::from_fn(fan_out, fan_in, |_, _| normal(rng, 0.0, std))
}

/// Xavier/Glorot uniform initialization: `U(-l, l)`, `l = sqrt(6/(in+out))`.
pub fn xavier_matrix(rng: &mut impl Rng, fan_out: usize, fan_in: usize) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out).max(1) as Scalar).sqrt();
    Matrix::from_fn(fan_out, fan_in, |_, _| rng.gen_range(-limit..limit))
}

/// Fills a slice with `N(0, std²)` samples.
pub fn fill_normal(rng: &mut impl Rng, std: Scalar, out: &mut [Scalar]) {
    for o in out.iter_mut() {
        *o = normal(rng, 0.0, std);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn child_streams_differ() {
        let mut parent1 = rng(7);
        let mut parent2 = rng(7);
        let mut c0 = child_rng(&mut parent1, 0);
        // Same parent state, different stream id → different stream.
        let mut c1 = child_rng(&mut parent2, 1);
        let same: usize = (0..64).filter(|_| c0.next_u64() == c1.next_u64()).count();
        assert!(same < 4, "child streams should diverge");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(1);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut r = rng(2);
        for shape in [0.3f64, 1.0, 2.5, 10.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| gamma(&mut r, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.12 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one_and_skews_with_alpha() {
        let mut r = rng(3);
        for alpha in [0.01f64, 0.1, 1.0, 10.0] {
            let p = dirichlet_symmetric(&mut r, alpha, 10);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "alpha {alpha}: sum {sum}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
        // Average max-coordinate should drop as alpha grows (less skew).
        let avg_max = |alpha: f64, r: &mut GflRng| {
            (0..200)
                .map(|_| {
                    dirichlet_symmetric(r, alpha, 10)
                        .into_iter()
                        .fold(0.0f64, f64::max)
                })
                .sum::<f64>()
                / 200.0
        };
        let skewed = avg_max(0.05, &mut r);
        let flat = avg_max(10.0, &mut r);
        assert!(
            skewed > flat + 0.3,
            "skewed {skewed} should dominate flat {flat}"
        );
    }

    #[test]
    fn he_matrix_variance_scales_with_fan_in() {
        let mut r = rng(4);
        let m = he_matrix(&mut r, 64, 128);
        let var: f32 = m.as_slice().iter().map(|x| x * x).sum::<f32>() / m.len() as f32;
        let expected = 2.0 / 128.0;
        assert!(
            (var - expected).abs() < expected * 0.3,
            "var {var}, expected {expected}"
        );
    }

    #[test]
    fn xavier_matrix_respects_limits() {
        let mut r = rng(5);
        let m = xavier_matrix(&mut r, 16, 8);
        let limit = (6.0f32 / 24.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
    }
}
