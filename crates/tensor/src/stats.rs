//! Scalar statistics shared by grouping, sampling, and the theory module.
//!
//! The paper's grouping criterion is the coefficient of variation of label
//! counts (Eq. 27), and its convergence constants γ and Γ (Eq. 11–12) are
//! squared CoVs of data-volume distributions (§4.3: γ − 1 = CoV²). The
//! canonical population-statistic helpers live here so every crate computes
//! them identically.

use crate::Scalar;

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(xs: &[Scalar]) -> Scalar {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<Scalar>() / xs.len() as Scalar
}

/// Population variance (divides by N); 0.0 for empty input.
pub fn variance(xs: &[Scalar]) -> Scalar {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<Scalar>() / xs.len() as Scalar
}

/// Population standard deviation.
pub fn std_dev(xs: &[Scalar]) -> Scalar {
    variance(xs).sqrt()
}

/// Coefficient of variation σ/μ.
///
/// Returns 0.0 when the mean is zero (the all-zero histogram is treated as
/// perfectly balanced rather than undefined; the grouping code never feeds a
/// zero-mean histogram for non-empty groups).
pub fn coefficient_of_variation(xs: &[Scalar]) -> Scalar {
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    std_dev(xs) / m
}

/// Min and max of a slice; `None` for empty input.
pub fn min_max(xs: &[Scalar]) -> Option<(Scalar, Scalar)> {
    let first = *xs.first()?;
    Some(
        xs.iter()
            .fold((first, first), |(lo, hi), &x| (lo.min(x), hi.max(x))),
    )
}

/// Kullback–Leibler divergence `KL(p ‖ q)` over probability vectors, with
/// the usual conventions: terms with `p_i = 0` contribute 0; terms with
/// `p_i > 0, q_i = 0` are smoothed by `eps` rather than returning ∞ (SHARE's
/// grouping objective needs finite values for greedy comparison).
pub fn kl_divergence(p: &[Scalar], q: &[Scalar], eps: Scalar) -> Scalar {
    assert_eq!(p.len(), q.len(), "kl_divergence: dim mismatch");
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        if pi > 0.0 {
            acc += pi * (pi / qi.max(eps)).ln();
        }
    }
    acc
}

/// Normalizes a non-negative histogram into a probability vector.
/// Returns a uniform vector when the total mass is zero.
pub fn normalize(xs: &[Scalar]) -> Vec<Scalar> {
    let total: Scalar = xs.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / xs.len().max(1) as Scalar; xs.len()];
    }
    xs.iter().map(|&x| x / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert!((coefficient_of_variation(&xs) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn cov_is_zero_for_balanced_histogram() {
        assert_eq!(coefficient_of_variation(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn cov_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        let ca = coefficient_of_variation(&a);
        let cb = coefficient_of_variation(&b);
        assert!((ca - cb).abs() < 1e-6);
    }

    #[test]
    fn kl_zero_for_identical_distributions() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p, 1e-9).abs() < 1e-7);
    }

    #[test]
    fn kl_positive_for_different_distributions() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        assert!(kl_divergence(&p, &q, 1e-9) > 1.0);
    }

    #[test]
    fn kl_handles_zero_q_via_smoothing() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        let kl = kl_divergence(&p, &q, 1e-9);
        assert!(kl.is_finite() && kl > 0.0);
    }

    #[test]
    fn normalize_uniform_on_zero_mass() {
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.5, 0.5]);
        let n = normalize(&[1.0, 3.0]);
        assert!((n[0] - 0.25).abs() < 1e-6 && (n[1] - 0.75).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_variance_nonnegative(xs in proptest::collection::vec(-1e3f32..1e3, 0..64)) {
            prop_assert!(variance(&xs) >= 0.0);
        }

        #[test]
        fn prop_kl_nonnegative(
            raw_p in proptest::collection::vec(0.01f32..1.0, 2..10),
        ) {
            let p = normalize(&raw_p);
            let q_raw: Vec<f32> = raw_p.iter().rev().cloned().collect();
            let q = normalize(&q_raw);
            // Gibbs' inequality (up to float error)
            prop_assert!(kl_divergence(&p, &q, 1e-9) >= -1e-5);
        }

        #[test]
        fn prop_normalize_sums_to_one(xs in proptest::collection::vec(0.0f32..100.0, 1..32)) {
            let n = normalize(&xs);
            let sum: f32 = n.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }
}
