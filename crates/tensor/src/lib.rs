//! Dense linear-algebra substrate for Group-FEL.
//!
//! The paper trains neural networks (a small ResNet and a 5-layer CNN) with
//! plain SGD; our reproduction replaces the PyTorch substrate with this
//! from-scratch dense math library. Everything the network layer
//! (`gfl-nn`) needs lives here:
//!
//! * [`Matrix`]: row-major `f32` matrix with blocked GEMM, GEMV, and
//!   transpose-aware products.
//! * [`ops`]: BLAS-1 style kernels over plain slices (axpy, dot, scale,
//!   norms, softmax).
//! * [`simd`]: explicit `std::arch` microkernels behind the four hot ops
//!   (dot/axpy/gemm_nt/gemm_tn), runtime-dispatched across AVX-512F /
//!   AVX2 / SSE2 / NEON / scalar tiers — all bit-identical, `GFL_SIMD`
//!   override.
//! * [`init`]: seeded He/Xavier/uniform initializers on top of ChaCha8, so
//!   every experiment in the paper reproduction is bit-deterministic given
//!   its seed.
//! * [`stats`]: mean/variance/CoV helpers shared with the grouping code.
//!
//! Hot-loop discipline follows the HPC guide: no allocation inside kernels,
//! caller-provided output buffers for every `*_into` variant, contiguous
//! row-major traversal, and `par_*` entry points that tile work across the
//! `gfl-parallel` pool only above a size threshold.

pub mod init;
pub mod matrix;
pub mod ops;
pub mod simd;
pub mod stats;

pub use matrix::{Matrix, MatrixRef};

/// Crate-wide floating point type. The paper's workloads are f32 end-to-end.
pub type Scalar = f32;

#[cfg(test)]
pub(crate) mod test_util {
    /// Asserts two slices are element-wise close.
    pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len(), "length mismatch");
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "index {i}: {x} vs {y} (tol {tol})"
            );
        }
    }
}
