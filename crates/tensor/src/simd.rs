//! Runtime-dispatched SIMD microkernels for the dense hot path.
//!
//! Four kernels carry essentially all training FLOPs: [`dot`], [`axpy`],
//! [`gemm_nt`] (forward `A·Bᵀ`) and [`gemm_tn`] (backward `Aᵀ·B`). This
//! module provides explicit `std::arch` implementations of each at every
//! dispatch tier the build can target — AVX-512F / AVX2 / SSE2 on x86-64,
//! NEON on aarch64 — plus a portable scalar reference, selected once at
//! runtime from CPU feature detection.
//!
//! # Bit-identity contract
//!
//! f32 addition is not associative, so "vectorize the loop" normally
//! changes results. Instead, every tier implements the *same* summation
//! DAG, defined by the scalar reference:
//!
//! - **dot**: 16 independent partial accumulators; chain `j` sums
//!   `x[16c+j] * y[16c+j]` over ascending `c`; the chains are then combined
//!   strictly left-to-right starting from `0.0`, followed by the remainder
//!   elements in ascending order. A 512-bit lane *is* one chain; 256-bit
//!   tiers run two vector accumulators, 128-bit tiers four, and the scalar
//!   tier a 16-element array. All tiers spill to the same `[f32; 16]`
//!   buffer and reduce it sequentially, so every tier produces the same
//!   bits.
//! - **axpy**: element-wise `y[i] + alpha * x[i]` — one multiply rounding
//!   and one add rounding per element in every tier, so lanes are trivially
//!   bit-identical.
//! - **gemm_nt**: each output element is one full-`k` [`dot`] in the
//!   canonical order; register-blocking over output columns only changes
//!   *which* outputs are in flight, never the per-element order.
//! - **gemm_tn**: each output element accumulates `a[t][i] * b[t][j]` over
//!   strictly ascending `t`, skipping terms where `a[t][i] == 0.0` (the
//!   ReLU zero-skip — an exact no-op to skip). Vector tiers keep a column
//!   block of the output row in registers across the `t` sweep; the
//!   per-element add sequence is unchanged.
//!
//! **No FMA, anywhere.** A fused multiply-add rounds once where
//! mul-then-add rounds twice, so using FMA in any tier would break
//! cross-tier bit-identity. The AVX2 tier therefore requires only `avx2`
//! (not `fma`), and the AVX-512 tier only `avx512f`.
//!
//! # Dispatch
//!
//! The active tier is a process-wide atomic, initialized lazily from the
//! `GFL_SIMD` environment variable: `auto` (or unset) picks the best
//! supported tier, `off`/`scalar` forces the scalar reference, and a tier
//! name (`sse2`, `avx2`, `avx512`, `neon`) forces that tier (panicking if
//! the CPU lacks it). [`set_tier`] switches tiers at runtime — the
//! determinism suite uses it to prove `GFL_SIMD=off` vs `auto` equality
//! in-process, and the bench harness uses it to measure per-tier GFLOP/s.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::Scalar;

/// One SIMD dispatch tier. Ordering is by capability: later tiers are
/// wider. Every tier computes bit-identical results (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SimdTier {
    /// Portable scalar reference (the canonical summation order).
    Scalar = 0,
    /// 128-bit `std::arch` kernels (x86-64 baseline).
    Sse2 = 1,
    /// 128-bit NEON kernels (aarch64 baseline).
    Neon = 2,
    /// 256-bit AVX2 kernels (no FMA — see module docs).
    Avx2 = 3,
    /// 512-bit AVX-512F kernels (one zmm lane per accumulator chain).
    Avx512 = 4,
}

impl SimdTier {
    /// Stable lower-case name, matching the `GFL_SIMD` syntax.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Neon => "neon",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }

    fn from_u8(v: u8) -> SimdTier {
        match v {
            1 => SimdTier::Sse2,
            2 => SimdTier::Neon,
            3 => SimdTier::Avx2,
            4 => SimdTier::Avx512,
            _ => SimdTier::Scalar,
        }
    }
}

/// Tiers usable on this CPU, ascending (always starts with `Scalar`).
pub fn supported_tiers() -> Vec<SimdTier> {
    let mut tiers = vec![SimdTier::Scalar];
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if is_x86_feature_detected!("sse2") {
            tiers.push(SimdTier::Sse2);
        }
        if is_x86_feature_detected!("avx2") {
            tiers.push(SimdTier::Avx2);
        }
        if is_x86_feature_detected!("avx512f") {
            tiers.push(SimdTier::Avx512);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            tiers.push(SimdTier::Neon);
        }
    }
    tiers
}

/// The widest tier this CPU supports.
pub fn detect_best() -> SimdTier {
    *supported_tiers().last().expect("scalar always supported")
}

const TIER_UNINIT: u8 = u8::MAX;
static ACTIVE_TIER: AtomicU8 = AtomicU8::new(TIER_UNINIT);

fn tier_from_env() -> SimdTier {
    match std::env::var("GFL_SIMD") {
        Err(_) => detect_best(),
        Ok(v) => match v.as_str() {
            "" | "auto" => detect_best(),
            "off" | "scalar" => SimdTier::Scalar,
            name => {
                let tier = supported_tiers()
                    .into_iter()
                    .find(|t| t.name() == name)
                    .unwrap_or_else(|| {
                        panic!(
                            "GFL_SIMD={name}: unknown or unsupported tier on this CPU \
                             (supported: auto, off{})",
                            supported_tiers()
                                .iter()
                                .map(|t| format!(", {}", t.name()))
                                .collect::<String>()
                        )
                    });
                tier
            }
        },
    }
}

/// The tier the kernels currently dispatch to.
///
/// Initialized on first use from `GFL_SIMD` (see module docs); later
/// changed only through [`set_tier`].
pub fn active_tier() -> SimdTier {
    let v = ACTIVE_TIER.load(Ordering::Relaxed);
    if v != TIER_UNINIT {
        return SimdTier::from_u8(v);
    }
    let tier = tier_from_env();
    ACTIVE_TIER.store(tier as u8, Ordering::Relaxed);
    tier
}

/// Forces the dispatch tier at runtime, returning the previous tier.
///
/// # Panics
/// Panics if this CPU does not support `tier`. Results are bit-identical
/// across tiers, so switching mid-run changes timing only — still, callers
/// that compare tiers (tests, benches) should serialize around this.
pub fn set_tier(tier: SimdTier) -> SimdTier {
    assert!(
        supported_tiers().contains(&tier),
        "SIMD tier {} not supported on this CPU",
        tier.name()
    );
    let prev = active_tier();
    ACTIVE_TIER.store(tier as u8, Ordering::Relaxed);
    prev
}

/// Dispatched dot product in the canonical 16-chain order.
pub fn dot(x: &[Scalar], y: &[Scalar]) -> Scalar {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    match active_tier() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdTier::Sse2 => unsafe { x86::dot_sse2(x, y) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdTier::Avx2 => unsafe { x86::dot_avx2(x, y) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdTier::Avx512 => unsafe { x86::dot_avx512(x, y) },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => unsafe { neon::dot_neon(x, y) },
        _ => scalar::dot(x, y),
    }
}

/// Dispatched `y += alpha * x`.
pub fn axpy(alpha: Scalar, x: &[Scalar], y: &mut [Scalar]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    match active_tier() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdTier::Sse2 => unsafe { x86::axpy_sse2(alpha, x, y) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdTier::Avx2 => unsafe { x86::axpy_avx2(alpha, x, y) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdTier::Avx512 => unsafe { x86::axpy_avx512(alpha, x, y) },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => unsafe { neon::axpy_neon(alpha, x, y) },
        _ => scalar::axpy(alpha, x, y),
    }
}

/// Dispatched `out = A · Bᵀ` (see [`crate::ops::gemm_nt`] for shapes).
pub fn gemm_nt(a: &[Scalar], b: &[Scalar], out: &mut [Scalar], m: usize, n: usize, k: usize) {
    assert_eq!(a.len(), m * k, "gemm_nt: lhs size");
    assert_eq!(b.len(), n * k, "gemm_nt: rhs size");
    assert_eq!(out.len(), m * n, "gemm_nt: out size");
    match active_tier() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdTier::Sse2 => unsafe { x86::gemm_nt_sse2(a, b, out, m, n, k) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdTier::Avx2 => unsafe { x86::gemm_nt_avx2(a, b, out, m, n, k) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdTier::Avx512 => unsafe { x86::gemm_nt_avx512(a, b, out, m, n, k) },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => unsafe { neon::gemm_nt_neon(a, b, out, m, n, k) },
        _ => scalar::gemm_nt(a, b, out, m, n, k),
    }
}

/// Dispatched `out = Aᵀ · B` (see [`crate::ops::gemm_tn`] for shapes).
pub fn gemm_tn(a: &[Scalar], b: &[Scalar], out: &mut [Scalar], r: usize, m: usize, n: usize) {
    assert_eq!(a.len(), r * m, "gemm_tn: lhs size");
    assert_eq!(b.len(), r * n, "gemm_tn: rhs size");
    assert_eq!(out.len(), m * n, "gemm_tn: out size");
    match active_tier() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdTier::Sse2 => unsafe { x86::gemm_tn_sse2(a, b, out, r, m, n) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdTier::Avx2 => unsafe { x86::gemm_tn_avx2(a, b, out, r, m, n) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdTier::Avx512 => unsafe { x86::gemm_tn_avx512(a, b, out, r, m, n) },
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => unsafe { neon::gemm_tn_neon(a, b, out, r, m, n) },
        _ => scalar::gemm_tn(a, b, out, r, m, n),
    }
}

/// Portable reference kernels defining the canonical summation order.
pub(crate) mod scalar {
    use crate::ops::GEMM_TILE;
    use crate::Scalar;

    /// Canonical dot: 16 stride-16 accumulator chains, reduced
    /// left-to-right from `0.0`, then the ascending remainder.
    pub(crate) fn dot(x: &[Scalar], y: &[Scalar]) -> Scalar {
        let mut acc = [0.0f32; 16];
        for (cx, cy) in x.chunks_exact(16).zip(y.chunks_exact(16)) {
            for ((a, &xv), &yv) in acc.iter_mut().zip(cx).zip(cy) {
                *a += xv * yv;
            }
        }
        let mut sum = 0.0;
        for &a in &acc {
            sum += a;
        }
        let done = (x.len() / 16) * 16;
        for (&xv, &yv) in x[done..].iter().zip(&y[done..]) {
            sum += xv * yv;
        }
        sum
    }

    pub(crate) fn axpy(alpha: Scalar, x: &[Scalar], y: &mut [Scalar]) {
        for (yi, &xi) in y.iter_mut().zip(x.iter()) {
            *yi += alpha * xi;
        }
    }

    pub(crate) fn gemm_nt(
        a: &[Scalar],
        b: &[Scalar],
        out: &mut [Scalar],
        m: usize,
        n: usize,
        k: usize,
    ) {
        for ib in (0..m).step_by(GEMM_TILE) {
            let ie = (ib + GEMM_TILE).min(m);
            for jb in (0..n).step_by(GEMM_TILE) {
                let je = (jb + GEMM_TILE).min(n);
                for i in ib..ie {
                    let ai = &a[i * k..(i + 1) * k];
                    let oi = &mut out[i * n..(i + 1) * n];
                    for j in jb..je {
                        oi[j] = dot(ai, &b[j * k..(j + 1) * k]);
                    }
                }
            }
        }
    }

    pub(crate) fn gemm_tn(
        a: &[Scalar],
        b: &[Scalar],
        out: &mut [Scalar],
        r: usize,
        m: usize,
        n: usize,
    ) {
        out.fill(0.0);
        for ib in (0..m).step_by(GEMM_TILE) {
            let ie = (ib + GEMM_TILE).min(m);
            for t in 0..r {
                let at = &a[t * m..(t + 1) * m];
                let bt = &b[t * n..(t + 1) * n];
                for i in ib..ie {
                    let av = at[i];
                    // Zero-skip: ReLU deltas are sparse, and skipping
                    // preserves the sum exactly (adding 0·bt is an exact
                    // no-op in f32).
                    if av != 0.0 {
                        axpy(av, bt, &mut out[i * n..(i + 1) * n]);
                    }
                }
            }
        }
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    //! x86 kernels. All are `unsafe` because of `#[target_feature]`; the
    //! dispatcher only calls them after runtime feature detection, and
    //! slice lengths are validated by the dispatcher's asserts.
    #![allow(unsafe_op_in_unsafe_fn)]

    #[cfg(target_arch = "x86")]
    use core::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    use crate::ops::GEMM_TILE;
    use crate::Scalar;

    /// Sequential reduction of the 16 spilled accumulator chains plus the
    /// ascending remainder — shared by every x86 tier so the combine order
    /// is written exactly once.
    #[inline(always)]
    unsafe fn finish_dot(
        buf: &[f32; 16],
        x: *const f32,
        y: *const f32,
        done: usize,
        len: usize,
    ) -> f32 {
        let mut sum = 0.0f32;
        for &v in buf {
            sum += v;
        }
        for i in done..len {
            sum += *x.add(i) * *y.add(i);
        }
        sum
    }

    // ---------------------------------------------------------------- SSE2

    #[target_feature(enable = "sse2")]
    unsafe fn dot_sse2_raw(x: *const f32, y: *const f32, len: usize) -> f32 {
        let chunks = len / 16;
        let mut acc0 = _mm_setzero_ps();
        let mut acc1 = _mm_setzero_ps();
        let mut acc2 = _mm_setzero_ps();
        let mut acc3 = _mm_setzero_ps();
        for c in 0..chunks {
            let i = c * 16;
            acc0 = _mm_add_ps(
                acc0,
                _mm_mul_ps(_mm_loadu_ps(x.add(i)), _mm_loadu_ps(y.add(i))),
            );
            acc1 = _mm_add_ps(
                acc1,
                _mm_mul_ps(_mm_loadu_ps(x.add(i + 4)), _mm_loadu_ps(y.add(i + 4))),
            );
            acc2 = _mm_add_ps(
                acc2,
                _mm_mul_ps(_mm_loadu_ps(x.add(i + 8)), _mm_loadu_ps(y.add(i + 8))),
            );
            acc3 = _mm_add_ps(
                acc3,
                _mm_mul_ps(_mm_loadu_ps(x.add(i + 12)), _mm_loadu_ps(y.add(i + 12))),
            );
        }
        let mut buf = [0.0f32; 16];
        _mm_storeu_ps(buf.as_mut_ptr(), acc0);
        _mm_storeu_ps(buf.as_mut_ptr().add(4), acc1);
        _mm_storeu_ps(buf.as_mut_ptr().add(8), acc2);
        _mm_storeu_ps(buf.as_mut_ptr().add(12), acc3);
        finish_dot(&buf, x, y, chunks * 16, len)
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn dot_sse2(x: &[Scalar], y: &[Scalar]) -> Scalar {
        dot_sse2_raw(x.as_ptr(), y.as_ptr(), x.len())
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn axpy_sse2(alpha: Scalar, x: &[Scalar], y: &mut [Scalar]) {
        let len = x.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let av = _mm_set1_ps(alpha);
        let wide = (len / 16) * 16;
        let mut i = 0;
        while i < wide {
            for q in 0..4 {
                let o = i + q * 4;
                let yv = _mm_add_ps(
                    _mm_loadu_ps(yp.add(o)),
                    _mm_mul_ps(av, _mm_loadu_ps(xp.add(o))),
                );
                _mm_storeu_ps(yp.add(o), yv);
            }
            i += 16;
        }
        while i < len {
            *yp.add(i) += alpha * *xp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn gemm_nt_sse2(
        a: &[Scalar],
        b: &[Scalar],
        out: &mut [Scalar],
        m: usize,
        n: usize,
        k: usize,
    ) {
        let chunks = k / 16;
        for ib in (0..m).step_by(GEMM_TILE) {
            let ie = (ib + GEMM_TILE).min(m);
            for jb in (0..n).step_by(GEMM_TILE) {
                let je = (jb + GEMM_TILE).min(n);
                for i in ib..ie {
                    let ar = a.as_ptr().add(i * k);
                    let orow = out.as_mut_ptr().add(i * n);
                    let mut j = jb;
                    // Two outputs at a time: 8 in-flight accumulator
                    // vectors hide add latency while the `a` row loads are
                    // shared between both columns.
                    while j + 2 <= je {
                        let b0 = b.as_ptr().add(j * k);
                        let b1 = b.as_ptr().add((j + 1) * k);
                        let mut p00 = _mm_setzero_ps();
                        let mut p01 = _mm_setzero_ps();
                        let mut p02 = _mm_setzero_ps();
                        let mut p03 = _mm_setzero_ps();
                        let mut p10 = _mm_setzero_ps();
                        let mut p11 = _mm_setzero_ps();
                        let mut p12 = _mm_setzero_ps();
                        let mut p13 = _mm_setzero_ps();
                        for c in 0..chunks {
                            let i0 = c * 16;
                            let x0 = _mm_loadu_ps(ar.add(i0));
                            let x1 = _mm_loadu_ps(ar.add(i0 + 4));
                            let x2 = _mm_loadu_ps(ar.add(i0 + 8));
                            let x3 = _mm_loadu_ps(ar.add(i0 + 12));
                            p00 = _mm_add_ps(p00, _mm_mul_ps(x0, _mm_loadu_ps(b0.add(i0))));
                            p01 = _mm_add_ps(p01, _mm_mul_ps(x1, _mm_loadu_ps(b0.add(i0 + 4))));
                            p02 = _mm_add_ps(p02, _mm_mul_ps(x2, _mm_loadu_ps(b0.add(i0 + 8))));
                            p03 = _mm_add_ps(p03, _mm_mul_ps(x3, _mm_loadu_ps(b0.add(i0 + 12))));
                            p10 = _mm_add_ps(p10, _mm_mul_ps(x0, _mm_loadu_ps(b1.add(i0))));
                            p11 = _mm_add_ps(p11, _mm_mul_ps(x1, _mm_loadu_ps(b1.add(i0 + 4))));
                            p12 = _mm_add_ps(p12, _mm_mul_ps(x2, _mm_loadu_ps(b1.add(i0 + 8))));
                            p13 = _mm_add_ps(p13, _mm_mul_ps(x3, _mm_loadu_ps(b1.add(i0 + 12))));
                        }
                        let mut buf = [0.0f32; 16];
                        _mm_storeu_ps(buf.as_mut_ptr(), p00);
                        _mm_storeu_ps(buf.as_mut_ptr().add(4), p01);
                        _mm_storeu_ps(buf.as_mut_ptr().add(8), p02);
                        _mm_storeu_ps(buf.as_mut_ptr().add(12), p03);
                        *orow.add(j) = finish_dot(&buf, ar, b0, chunks * 16, k);
                        _mm_storeu_ps(buf.as_mut_ptr(), p10);
                        _mm_storeu_ps(buf.as_mut_ptr().add(4), p11);
                        _mm_storeu_ps(buf.as_mut_ptr().add(8), p12);
                        _mm_storeu_ps(buf.as_mut_ptr().add(12), p13);
                        *orow.add(j + 1) = finish_dot(&buf, ar, b1, chunks * 16, k);
                        j += 2;
                    }
                    while j < je {
                        *orow.add(j) = dot_sse2_raw(ar, b.as_ptr().add(j * k), k);
                        j += 1;
                    }
                }
            }
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn gemm_tn_sse2(
        a: &[Scalar],
        b: &[Scalar],
        out: &mut [Scalar],
        r: usize,
        m: usize,
        n: usize,
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        for i in 0..m {
            let orow = out.as_mut_ptr().add(i * n);
            let mut j = 0;
            // A 16-column block of the output row lives in registers for
            // the whole ascending-`t` sweep; each term is added exactly
            // when the scalar kernel would add it (zero terms skipped).
            while j + 16 <= n {
                let mut s0 = _mm_setzero_ps();
                let mut s1 = _mm_setzero_ps();
                let mut s2 = _mm_setzero_ps();
                let mut s3 = _mm_setzero_ps();
                for t in 0..r {
                    let av = *ap.add(t * m + i);
                    if av != 0.0 {
                        let avv = _mm_set1_ps(av);
                        let bt = bp.add(t * n + j);
                        s0 = _mm_add_ps(s0, _mm_mul_ps(avv, _mm_loadu_ps(bt)));
                        s1 = _mm_add_ps(s1, _mm_mul_ps(avv, _mm_loadu_ps(bt.add(4))));
                        s2 = _mm_add_ps(s2, _mm_mul_ps(avv, _mm_loadu_ps(bt.add(8))));
                        s3 = _mm_add_ps(s3, _mm_mul_ps(avv, _mm_loadu_ps(bt.add(12))));
                    }
                }
                _mm_storeu_ps(orow.add(j), s0);
                _mm_storeu_ps(orow.add(j + 4), s1);
                _mm_storeu_ps(orow.add(j + 8), s2);
                _mm_storeu_ps(orow.add(j + 12), s3);
                j += 16;
            }
            while j < n {
                let mut s = 0.0f32;
                for t in 0..r {
                    let av = *ap.add(t * m + i);
                    if av != 0.0 {
                        s += av * *bp.add(t * n + j);
                    }
                }
                *orow.add(j) = s;
                j += 1;
            }
        }
    }

    // ---------------------------------------------------------------- AVX2

    #[target_feature(enable = "avx2")]
    unsafe fn dot_avx2_raw(x: *const f32, y: *const f32, len: usize) -> f32 {
        let chunks = len / 16;
        let mut lo = _mm256_setzero_ps();
        let mut hi = _mm256_setzero_ps();
        for c in 0..chunks {
            let i = c * 16;
            lo = _mm256_add_ps(
                lo,
                _mm256_mul_ps(_mm256_loadu_ps(x.add(i)), _mm256_loadu_ps(y.add(i))),
            );
            hi = _mm256_add_ps(
                hi,
                _mm256_mul_ps(_mm256_loadu_ps(x.add(i + 8)), _mm256_loadu_ps(y.add(i + 8))),
            );
        }
        let mut buf = [0.0f32; 16];
        _mm256_storeu_ps(buf.as_mut_ptr(), lo);
        _mm256_storeu_ps(buf.as_mut_ptr().add(8), hi);
        finish_dot(&buf, x, y, chunks * 16, len)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_avx2(x: &[Scalar], y: &[Scalar]) -> Scalar {
        dot_avx2_raw(x.as_ptr(), y.as_ptr(), x.len())
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_avx2(alpha: Scalar, x: &[Scalar], y: &mut [Scalar]) {
        let len = x.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let av = _mm256_set1_ps(alpha);
        let wide = (len / 16) * 16;
        let mut i = 0;
        while i < wide {
            let y0 = _mm256_add_ps(
                _mm256_loadu_ps(yp.add(i)),
                _mm256_mul_ps(av, _mm256_loadu_ps(xp.add(i))),
            );
            let y1 = _mm256_add_ps(
                _mm256_loadu_ps(yp.add(i + 8)),
                _mm256_mul_ps(av, _mm256_loadu_ps(xp.add(i + 8))),
            );
            _mm256_storeu_ps(yp.add(i), y0);
            _mm256_storeu_ps(yp.add(i + 8), y1);
            i += 16;
        }
        while i < len {
            *yp.add(i) += alpha * *xp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_nt_avx2(
        a: &[Scalar],
        b: &[Scalar],
        out: &mut [Scalar],
        m: usize,
        n: usize,
        k: usize,
    ) {
        let chunks = k / 16;
        for ib in (0..m).step_by(GEMM_TILE) {
            let ie = (ib + GEMM_TILE).min(m);
            for jb in (0..n).step_by(GEMM_TILE) {
                let je = (jb + GEMM_TILE).min(n);
                for i in ib..ie {
                    let ar = a.as_ptr().add(i * k);
                    let orow = out.as_mut_ptr().add(i * n);
                    let mut j = jb;
                    // Four outputs at a time: 8 in-flight ymm accumulators,
                    // `a` row loads shared across all four columns.
                    while j + 4 <= je {
                        let b0 = b.as_ptr().add(j * k);
                        let b1 = b.as_ptr().add((j + 1) * k);
                        let b2 = b.as_ptr().add((j + 2) * k);
                        let b3 = b.as_ptr().add((j + 3) * k);
                        let mut p0l = _mm256_setzero_ps();
                        let mut p0h = _mm256_setzero_ps();
                        let mut p1l = _mm256_setzero_ps();
                        let mut p1h = _mm256_setzero_ps();
                        let mut p2l = _mm256_setzero_ps();
                        let mut p2h = _mm256_setzero_ps();
                        let mut p3l = _mm256_setzero_ps();
                        let mut p3h = _mm256_setzero_ps();
                        for c in 0..chunks {
                            let i0 = c * 16;
                            let xl = _mm256_loadu_ps(ar.add(i0));
                            let xh = _mm256_loadu_ps(ar.add(i0 + 8));
                            p0l =
                                _mm256_add_ps(p0l, _mm256_mul_ps(xl, _mm256_loadu_ps(b0.add(i0))));
                            p0h = _mm256_add_ps(
                                p0h,
                                _mm256_mul_ps(xh, _mm256_loadu_ps(b0.add(i0 + 8))),
                            );
                            p1l =
                                _mm256_add_ps(p1l, _mm256_mul_ps(xl, _mm256_loadu_ps(b1.add(i0))));
                            p1h = _mm256_add_ps(
                                p1h,
                                _mm256_mul_ps(xh, _mm256_loadu_ps(b1.add(i0 + 8))),
                            );
                            p2l =
                                _mm256_add_ps(p2l, _mm256_mul_ps(xl, _mm256_loadu_ps(b2.add(i0))));
                            p2h = _mm256_add_ps(
                                p2h,
                                _mm256_mul_ps(xh, _mm256_loadu_ps(b2.add(i0 + 8))),
                            );
                            p3l =
                                _mm256_add_ps(p3l, _mm256_mul_ps(xl, _mm256_loadu_ps(b3.add(i0))));
                            p3h = _mm256_add_ps(
                                p3h,
                                _mm256_mul_ps(xh, _mm256_loadu_ps(b3.add(i0 + 8))),
                            );
                        }
                        let done = chunks * 16;
                        let mut buf = [0.0f32; 16];
                        _mm256_storeu_ps(buf.as_mut_ptr(), p0l);
                        _mm256_storeu_ps(buf.as_mut_ptr().add(8), p0h);
                        *orow.add(j) = finish_dot(&buf, ar, b0, done, k);
                        _mm256_storeu_ps(buf.as_mut_ptr(), p1l);
                        _mm256_storeu_ps(buf.as_mut_ptr().add(8), p1h);
                        *orow.add(j + 1) = finish_dot(&buf, ar, b1, done, k);
                        _mm256_storeu_ps(buf.as_mut_ptr(), p2l);
                        _mm256_storeu_ps(buf.as_mut_ptr().add(8), p2h);
                        *orow.add(j + 2) = finish_dot(&buf, ar, b2, done, k);
                        _mm256_storeu_ps(buf.as_mut_ptr(), p3l);
                        _mm256_storeu_ps(buf.as_mut_ptr().add(8), p3h);
                        *orow.add(j + 3) = finish_dot(&buf, ar, b3, done, k);
                        j += 4;
                    }
                    while j < je {
                        *orow.add(j) = dot_avx2_raw(ar, b.as_ptr().add(j * k), k);
                        j += 1;
                    }
                }
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_tn_avx2(
        a: &[Scalar],
        b: &[Scalar],
        out: &mut [Scalar],
        r: usize,
        m: usize,
        n: usize,
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        for i in 0..m {
            let orow = out.as_mut_ptr().add(i * n);
            let mut j = 0;
            while j + 32 <= n {
                let mut s0 = _mm256_setzero_ps();
                let mut s1 = _mm256_setzero_ps();
                let mut s2 = _mm256_setzero_ps();
                let mut s3 = _mm256_setzero_ps();
                for t in 0..r {
                    let av = *ap.add(t * m + i);
                    if av != 0.0 {
                        let avv = _mm256_set1_ps(av);
                        let bt = bp.add(t * n + j);
                        s0 = _mm256_add_ps(s0, _mm256_mul_ps(avv, _mm256_loadu_ps(bt)));
                        s1 = _mm256_add_ps(s1, _mm256_mul_ps(avv, _mm256_loadu_ps(bt.add(8))));
                        s2 = _mm256_add_ps(s2, _mm256_mul_ps(avv, _mm256_loadu_ps(bt.add(16))));
                        s3 = _mm256_add_ps(s3, _mm256_mul_ps(avv, _mm256_loadu_ps(bt.add(24))));
                    }
                }
                _mm256_storeu_ps(orow.add(j), s0);
                _mm256_storeu_ps(orow.add(j + 8), s1);
                _mm256_storeu_ps(orow.add(j + 16), s2);
                _mm256_storeu_ps(orow.add(j + 24), s3);
                j += 32;
            }
            while j + 8 <= n {
                let mut s = _mm256_setzero_ps();
                for t in 0..r {
                    let av = *ap.add(t * m + i);
                    if av != 0.0 {
                        s = _mm256_add_ps(
                            s,
                            _mm256_mul_ps(_mm256_set1_ps(av), _mm256_loadu_ps(bp.add(t * n + j))),
                        );
                    }
                }
                _mm256_storeu_ps(orow.add(j), s);
                j += 8;
            }
            while j < n {
                let mut s = 0.0f32;
                for t in 0..r {
                    let av = *ap.add(t * m + i);
                    if av != 0.0 {
                        s += av * *bp.add(t * n + j);
                    }
                }
                *orow.add(j) = s;
                j += 1;
            }
        }
    }

    // -------------------------------------------------------------- AVX512

    #[target_feature(enable = "avx512f")]
    unsafe fn dot_avx512_raw(x: *const f32, y: *const f32, len: usize) -> f32 {
        let chunks = len / 16;
        // One zmm lane per canonical accumulator chain.
        let mut acc = _mm512_setzero_ps();
        for c in 0..chunks {
            let i = c * 16;
            acc = _mm512_add_ps(
                acc,
                _mm512_mul_ps(_mm512_loadu_ps(x.add(i)), _mm512_loadu_ps(y.add(i))),
            );
        }
        let mut buf = [0.0f32; 16];
        _mm512_storeu_ps(buf.as_mut_ptr(), acc);
        finish_dot(&buf, x, y, chunks * 16, len)
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn dot_avx512(x: &[Scalar], y: &[Scalar]) -> Scalar {
        dot_avx512_raw(x.as_ptr(), y.as_ptr(), x.len())
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn axpy_avx512(alpha: Scalar, x: &[Scalar], y: &mut [Scalar]) {
        let len = x.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let av = _mm512_set1_ps(alpha);
        let wide = (len / 32) * 32;
        let mut i = 0;
        while i < wide {
            let y0 = _mm512_add_ps(
                _mm512_loadu_ps(yp.add(i)),
                _mm512_mul_ps(av, _mm512_loadu_ps(xp.add(i))),
            );
            let y1 = _mm512_add_ps(
                _mm512_loadu_ps(yp.add(i + 16)),
                _mm512_mul_ps(av, _mm512_loadu_ps(xp.add(i + 16))),
            );
            _mm512_storeu_ps(yp.add(i), y0);
            _mm512_storeu_ps(yp.add(i + 16), y1);
            i += 32;
        }
        while i < len {
            *yp.add(i) += alpha * *xp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn gemm_nt_avx512(
        a: &[Scalar],
        b: &[Scalar],
        out: &mut [Scalar],
        m: usize,
        n: usize,
        k: usize,
    ) {
        let chunks = k / 16;
        for ib in (0..m).step_by(GEMM_TILE) {
            let ie = (ib + GEMM_TILE).min(m);
            for jb in (0..n).step_by(GEMM_TILE) {
                let je = (jb + GEMM_TILE).min(n);
                for i in ib..ie {
                    let ar = a.as_ptr().add(i * k);
                    let orow = out.as_mut_ptr().add(i * n);
                    let mut j = jb;
                    // Four outputs at a time: one zmm accumulator each
                    // (lane = canonical chain), shared `a` row loads.
                    while j + 4 <= je {
                        let b0 = b.as_ptr().add(j * k);
                        let b1 = b.as_ptr().add((j + 1) * k);
                        let b2 = b.as_ptr().add((j + 2) * k);
                        let b3 = b.as_ptr().add((j + 3) * k);
                        let mut p0 = _mm512_setzero_ps();
                        let mut p1 = _mm512_setzero_ps();
                        let mut p2 = _mm512_setzero_ps();
                        let mut p3 = _mm512_setzero_ps();
                        for c in 0..chunks {
                            let i0 = c * 16;
                            let xv = _mm512_loadu_ps(ar.add(i0));
                            p0 = _mm512_add_ps(p0, _mm512_mul_ps(xv, _mm512_loadu_ps(b0.add(i0))));
                            p1 = _mm512_add_ps(p1, _mm512_mul_ps(xv, _mm512_loadu_ps(b1.add(i0))));
                            p2 = _mm512_add_ps(p2, _mm512_mul_ps(xv, _mm512_loadu_ps(b2.add(i0))));
                            p3 = _mm512_add_ps(p3, _mm512_mul_ps(xv, _mm512_loadu_ps(b3.add(i0))));
                        }
                        let done = chunks * 16;
                        let mut buf = [0.0f32; 16];
                        _mm512_storeu_ps(buf.as_mut_ptr(), p0);
                        *orow.add(j) = finish_dot(&buf, ar, b0, done, k);
                        _mm512_storeu_ps(buf.as_mut_ptr(), p1);
                        *orow.add(j + 1) = finish_dot(&buf, ar, b1, done, k);
                        _mm512_storeu_ps(buf.as_mut_ptr(), p2);
                        *orow.add(j + 2) = finish_dot(&buf, ar, b2, done, k);
                        _mm512_storeu_ps(buf.as_mut_ptr(), p3);
                        *orow.add(j + 3) = finish_dot(&buf, ar, b3, done, k);
                        j += 4;
                    }
                    while j < je {
                        *orow.add(j) = dot_avx512_raw(ar, b.as_ptr().add(j * k), k);
                        j += 1;
                    }
                }
            }
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn gemm_tn_avx512(
        a: &[Scalar],
        b: &[Scalar],
        out: &mut [Scalar],
        r: usize,
        m: usize,
        n: usize,
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        for i in 0..m {
            let orow = out.as_mut_ptr().add(i * n);
            let mut j = 0;
            while j + 64 <= n {
                let mut s0 = _mm512_setzero_ps();
                let mut s1 = _mm512_setzero_ps();
                let mut s2 = _mm512_setzero_ps();
                let mut s3 = _mm512_setzero_ps();
                for t in 0..r {
                    let av = *ap.add(t * m + i);
                    if av != 0.0 {
                        let avv = _mm512_set1_ps(av);
                        let bt = bp.add(t * n + j);
                        s0 = _mm512_add_ps(s0, _mm512_mul_ps(avv, _mm512_loadu_ps(bt)));
                        s1 = _mm512_add_ps(s1, _mm512_mul_ps(avv, _mm512_loadu_ps(bt.add(16))));
                        s2 = _mm512_add_ps(s2, _mm512_mul_ps(avv, _mm512_loadu_ps(bt.add(32))));
                        s3 = _mm512_add_ps(s3, _mm512_mul_ps(avv, _mm512_loadu_ps(bt.add(48))));
                    }
                }
                _mm512_storeu_ps(orow.add(j), s0);
                _mm512_storeu_ps(orow.add(j + 16), s1);
                _mm512_storeu_ps(orow.add(j + 32), s2);
                _mm512_storeu_ps(orow.add(j + 48), s3);
                j += 64;
            }
            while j + 16 <= n {
                let mut s = _mm512_setzero_ps();
                for t in 0..r {
                    let av = *ap.add(t * m + i);
                    if av != 0.0 {
                        s = _mm512_add_ps(
                            s,
                            _mm512_mul_ps(_mm512_set1_ps(av), _mm512_loadu_ps(bp.add(t * n + j))),
                        );
                    }
                }
                _mm512_storeu_ps(orow.add(j), s);
                j += 16;
            }
            while j < n {
                let mut s = 0.0f32;
                for t in 0..r {
                    let av = *ap.add(t * m + i);
                    if av != 0.0 {
                        s += av * *bp.add(t * n + j);
                    }
                }
                *orow.add(j) = s;
                j += 1;
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON kernels — same accumulator-chain layout as the SSE2 tier
    //! (4 × 128-bit), so the canonical order carries over unchanged.
    #![allow(unsafe_op_in_unsafe_fn)]

    use core::arch::aarch64::*;

    use crate::Scalar;

    #[inline(always)]
    unsafe fn finish_dot(
        buf: &[f32; 16],
        x: *const f32,
        y: *const f32,
        done: usize,
        len: usize,
    ) -> f32 {
        let mut sum = 0.0f32;
        for &v in buf {
            sum += v;
        }
        for i in done..len {
            sum += *x.add(i) * *y.add(i);
        }
        sum
    }

    #[target_feature(enable = "neon")]
    unsafe fn dot_neon_raw(x: *const f32, y: *const f32, len: usize) -> f32 {
        let chunks = len / 16;
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut acc2 = vdupq_n_f32(0.0);
        let mut acc3 = vdupq_n_f32(0.0);
        for c in 0..chunks {
            let i = c * 16;
            acc0 = vaddq_f32(acc0, vmulq_f32(vld1q_f32(x.add(i)), vld1q_f32(y.add(i))));
            acc1 = vaddq_f32(
                acc1,
                vmulq_f32(vld1q_f32(x.add(i + 4)), vld1q_f32(y.add(i + 4))),
            );
            acc2 = vaddq_f32(
                acc2,
                vmulq_f32(vld1q_f32(x.add(i + 8)), vld1q_f32(y.add(i + 8))),
            );
            acc3 = vaddq_f32(
                acc3,
                vmulq_f32(vld1q_f32(x.add(i + 12)), vld1q_f32(y.add(i + 12))),
            );
        }
        let mut buf = [0.0f32; 16];
        vst1q_f32(buf.as_mut_ptr(), acc0);
        vst1q_f32(buf.as_mut_ptr().add(4), acc1);
        vst1q_f32(buf.as_mut_ptr().add(8), acc2);
        vst1q_f32(buf.as_mut_ptr().add(12), acc3);
        finish_dot(&buf, x, y, chunks * 16, len)
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot_neon(x: &[Scalar], y: &[Scalar]) -> Scalar {
        dot_neon_raw(x.as_ptr(), y.as_ptr(), x.len())
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy_neon(alpha: Scalar, x: &[Scalar], y: &mut [Scalar]) {
        let len = x.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let av = vdupq_n_f32(alpha);
        let wide = (len / 8) * 8;
        let mut i = 0;
        while i < wide {
            let y0 = vaddq_f32(vld1q_f32(yp.add(i)), vmulq_f32(av, vld1q_f32(xp.add(i))));
            let y1 = vaddq_f32(
                vld1q_f32(yp.add(i + 4)),
                vmulq_f32(av, vld1q_f32(xp.add(i + 4))),
            );
            vst1q_f32(yp.add(i), y0);
            vst1q_f32(yp.add(i + 4), y1);
            i += 8;
        }
        while i < len {
            *yp.add(i) += alpha * *xp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn gemm_nt_neon(
        a: &[Scalar],
        b: &[Scalar],
        out: &mut [Scalar],
        m: usize,
        n: usize,
        k: usize,
    ) {
        use crate::ops::GEMM_TILE;
        for ib in (0..m).step_by(GEMM_TILE) {
            let ie = (ib + GEMM_TILE).min(m);
            for jb in (0..n).step_by(GEMM_TILE) {
                let je = (jb + GEMM_TILE).min(n);
                for i in ib..ie {
                    let ar = a.as_ptr().add(i * k);
                    let orow = out.as_mut_ptr().add(i * n);
                    for j in jb..je {
                        *orow.add(j) = dot_neon_raw(ar, b.as_ptr().add(j * k), k);
                    }
                }
            }
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn gemm_tn_neon(
        a: &[Scalar],
        b: &[Scalar],
        out: &mut [Scalar],
        r: usize,
        m: usize,
        n: usize,
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        for i in 0..m {
            let orow = out.as_mut_ptr().add(i * n);
            let mut j = 0;
            while j + 16 <= n {
                let mut s0 = vdupq_n_f32(0.0);
                let mut s1 = vdupq_n_f32(0.0);
                let mut s2 = vdupq_n_f32(0.0);
                let mut s3 = vdupq_n_f32(0.0);
                for t in 0..r {
                    let av = *ap.add(t * m + i);
                    if av != 0.0 {
                        let avv = vdupq_n_f32(av);
                        let bt = bp.add(t * n + j);
                        s0 = vaddq_f32(s0, vmulq_f32(avv, vld1q_f32(bt)));
                        s1 = vaddq_f32(s1, vmulq_f32(avv, vld1q_f32(bt.add(4))));
                        s2 = vaddq_f32(s2, vmulq_f32(avv, vld1q_f32(bt.add(8))));
                        s3 = vaddq_f32(s3, vmulq_f32(avv, vld1q_f32(bt.add(12))));
                    }
                }
                vst1q_f32(orow.add(j), s0);
                vst1q_f32(orow.add(j + 4), s1);
                vst1q_f32(orow.add(j + 8), s2);
                vst1q_f32(orow.add(j + 12), s3);
                j += 16;
            }
            while j < n {
                let mut s = 0.0f32;
                for t in 0..r {
                    let av = *ap.add(t * m + i);
                    if av != 0.0 {
                        s += av * *bp.add(t * n + j);
                    }
                }
                *orow.add(j) = s;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that flip the process-wide tier. Results are
    /// tier-independent, so racing would only break assertions *about*
    /// the active tier — but serialize anyway for determinism.
    static TIER_LOCK: Mutex<()> = Mutex::new(());

    fn tier_lock() -> MutexGuard<'static, ()> {
        TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deterministic pseudo-random fill that exercises non-representable
    /// sums (so any associativity drift actually flips bits).
    fn lcg_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn other_tiers() -> Vec<SimdTier> {
        supported_tiers()
            .into_iter()
            .filter(|&t| t != SimdTier::Scalar)
            .collect()
    }

    fn dot_with(tier: SimdTier, x: &[f32], y: &[f32]) -> f32 {
        let prev = set_tier(tier);
        let d = dot(x, y);
        set_tier(prev);
        d
    }

    #[test]
    fn detect_best_is_last_supported() {
        let tiers = supported_tiers();
        assert_eq!(tiers[0], SimdTier::Scalar);
        assert_eq!(detect_best(), *tiers.last().unwrap());
    }

    #[test]
    fn set_tier_roundtrips() {
        let _g = tier_lock();
        let initial = active_tier();
        let prev = set_tier(SimdTier::Scalar);
        assert_eq!(prev, initial);
        assert_eq!(active_tier(), SimdTier::Scalar);
        set_tier(initial);
        assert_eq!(active_tier(), initial);
    }

    #[test]
    fn dot_bitwise_identical_across_tiers() {
        let _g = tier_lock();
        for len in [0usize, 1, 5, 15, 16, 17, 31, 32, 100, 255, 256, 1000] {
            let x = lcg_vec(len, 17 + len as u64);
            let y = lcg_vec(len, 91 + len as u64);
            let want = scalar::dot(&x, &y);
            for tier in other_tiers() {
                let got = dot_with(tier, &x, &y);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "dot len={len} tier={} : {got} vs scalar {want}",
                    tier.name()
                );
            }
        }
    }

    #[test]
    fn axpy_bitwise_identical_across_tiers() {
        let _g = tier_lock();
        for len in [0usize, 1, 7, 16, 33, 64, 100, 257] {
            let x = lcg_vec(len, 3 + len as u64);
            let base = lcg_vec(len, 7 + len as u64);
            let mut want = base.clone();
            scalar::axpy(0.37, &x, &mut want);
            for tier in other_tiers() {
                let mut got = base.clone();
                let prev = set_tier(tier);
                axpy(0.37, &x, &mut got);
                set_tier(prev);
                let same = got
                    .iter()
                    .zip(&want)
                    .all(|(g, w)| g.to_bits() == w.to_bits());
                assert!(same, "axpy len={len} tier={}", tier.name());
            }
        }
    }

    #[test]
    fn gemm_nt_bitwise_identical_across_tiers() {
        let _g = tier_lock();
        for (m, n, k) in [
            (1, 1, 1),
            (3, 5, 7),
            (8, 33, 17),
            (33, 31, 40),
            (40, 34, 129),
        ] {
            let a = lcg_vec(m * k, 11);
            let b = lcg_vec(n * k, 13);
            let mut want = vec![0.0f32; m * n];
            scalar::gemm_nt(&a, &b, &mut want, m, n, k);
            for tier in other_tiers() {
                let mut got = vec![0.0f32; m * n];
                let prev = set_tier(tier);
                gemm_nt(&a, &b, &mut got, m, n, k);
                set_tier(prev);
                for (idx, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "gemm_nt ({m},{n},{k}) tier={} idx={idx}",
                        tier.name()
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_tn_bitwise_identical_across_tiers() {
        let _g = tier_lock();
        for (r, m, n) in [
            (1, 1, 1),
            (7, 5, 3),
            (32, 10, 64),
            (40, 33, 31),
            (129, 34, 65),
        ] {
            let a = lcg_vec(r * m, 19);
            let b = lcg_vec(r * n, 23);
            let mut want = vec![0.0f32; m * n];
            scalar::gemm_tn(&a, &b, &mut want, r, m, n);
            for tier in other_tiers() {
                let mut got = vec![0.0f32; m * n];
                let prev = set_tier(tier);
                gemm_tn(&a, &b, &mut got, r, m, n);
                set_tier(prev);
                for (idx, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "gemm_tn ({r},{m},{n}) tier={} idx={idx}",
                        tier.name()
                    );
                }
            }
        }
    }

    proptest! {
        /// Satellite: the ReLU zero-skip must survive vectorization —
        /// sparse-delta inputs (many exact zeros, like backprop deltas
        /// after ReLU masking) produce bit-identical `gemm_tn` results at
        /// every tier.
        #[test]
        fn prop_gemm_tn_sparse_delta_bitwise(
            seed in 0u64..1000,
            r in 1usize..24,
            m in 1usize..12,
            n in 1usize..80,
            density in 0.0f64..1.0,
        ) {
            let _g = tier_lock();
            let mut a = lcg_vec(r * m, seed);
            // Zero out entries like a ReLU mask would.
            let gate = lcg_vec(r * m, seed ^ 0xabcd);
            for (av, g) in a.iter_mut().zip(&gate) {
                if f64::from(*g) * 0.5 + 0.5 > density {
                    *av = 0.0;
                }
            }
            let b = lcg_vec(r * n, seed ^ 0x55aa);
            let mut want = vec![0.0f32; m * n];
            scalar::gemm_tn(&a, &b, &mut want, r, m, n);
            for tier in other_tiers() {
                let mut got = vec![0.0f32; m * n];
                let prev = set_tier(tier);
                gemm_tn(&a, &b, &mut got, r, m, n);
                set_tier(prev);
                for (g, w) in got.iter().zip(&want) {
                    prop_assert_eq!(g.to_bits(), w.to_bits(),
                        "tier={} r={} m={} n={}", tier.name(), r, m, n);
                }
            }
        }

        /// Sparse inputs through `gemm_nt` as well: zero-heavy rows must
        /// not perturb the canonical dot order.
        #[test]
        fn prop_gemm_nt_bitwise(
            seed in 0u64..1000,
            m in 1usize..10,
            n in 1usize..10,
            k in 1usize..96,
        ) {
            let _g = tier_lock();
            let a = lcg_vec(m * k, seed);
            let b = lcg_vec(n * k, seed ^ 0x77);
            let mut want = vec![0.0f32; m * n];
            scalar::gemm_nt(&a, &b, &mut want, m, n, k);
            for tier in other_tiers() {
                let mut got = vec![0.0f32; m * n];
                let prev = set_tier(tier);
                gemm_nt(&a, &b, &mut got, m, n, k);
                set_tier(prev);
                for (g, w) in got.iter().zip(&want) {
                    prop_assert_eq!(g.to_bits(), w.to_bits(), "tier={}", tier.name());
                }
            }
        }
    }
}
