//! Row-major dense matrix with the product kernels the network needs.
//!
//! The forward pass of a fully-connected layer over a batch is
//! `Y = X · Wᵀ + b` (batch rows × output columns); the backward pass needs
//! `∇W = ∇Yᵀ · X` and `∇X = ∇Y · W`. Rather than materializing transposes,
//! [`Matrix`] provides transpose-aware kernels (`matmul_nt`, `matmul_tn`)
//! that traverse both operands contiguously.

use serde::{Deserialize, Serialize};

use crate::{ops, Scalar};

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Scalar>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps an existing buffer. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Scalar>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Builds a matrix from a row-major closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Scalar) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    pub fn as_slice(&self) -> &[Scalar] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [Scalar] {
        &mut self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[Scalar] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [Scalar] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor (bounds-checked in debug builds).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Scalar {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Scalar) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// `out = self · otherᵀ`, i.e. `out[i][j] = self.row(i) · other.row(j)`.
    ///
    /// Both operands are traversed row-contiguously and the loops are
    /// cache-blocked (see [`ops::gemm_nt`]), so this is the preferred kernel
    /// for `X · Wᵀ` layer forward passes.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_nt: inner dim mismatch");
        assert_eq!(out.rows, self.rows, "matmul_nt: out rows");
        assert_eq!(out.cols, other.rows, "matmul_nt: out cols");
        ops::gemm_nt(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            other.rows,
            self.cols,
        );
    }

    /// Allocating variant of [`Matrix::matmul_nt_into`].
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `out = selfᵀ · other`, i.e. `out[i][j] = Σ_k self[k][i] * other[k][j]`.
    ///
    /// This is the `∇W = ∇Yᵀ · X` backward kernel. Implemented as cache-
    /// blocked rank-1 update accumulation (see [`ops::gemm_tn`]) so the inner
    /// loop stays contiguous in `other` and the output tile stays resident.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "matmul_tn: inner dim mismatch");
        assert_eq!(out.rows, self.cols, "matmul_tn: out rows");
        assert_eq!(out.cols, other.cols, "matmul_tn: out cols");
        ops::gemm_tn(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
    }

    /// Allocating variant of [`Matrix::matmul_tn_into`].
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// Plain `out = self · other`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul: inner dim mismatch");
        assert_eq!(out.rows, self.rows, "matmul: out rows");
        assert_eq!(out.cols, other.cols, "matmul: out cols");
        out.data.fill(0.0);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a != 0.0 {
                    ops::axpy(a, other.row(k), out_row);
                }
            }
        }
    }

    /// Allocating variant of [`Matrix::matmul_into`].
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix-vector product `out = self · x`.
    pub fn matvec_into(&self, x: &[Scalar], out: &mut [Scalar]) {
        assert_eq!(x.len(), self.cols, "matvec: dim mismatch");
        assert_eq!(out.len(), self.rows, "matvec: out dim mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = ops::dot(self.row(i), x);
        }
    }

    /// Adds `other` element-wise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        ops::add_assign(&other.data, &mut self.data);
    }

    /// Scales every element.
    pub fn scale(&mut self, alpha: Scalar) {
        ops::scale(alpha, &mut self.data);
    }

    /// Materialized transpose (used only off the hot path).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> Scalar {
        ops::norm(&self.data)
    }

    /// Selects the given rows into a new matrix (gathers a minibatch).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// [`Matrix::gather_rows`] into a caller-owned matrix, reshaped to
    /// `indices.len() × self.cols` while reusing its backing buffer. This is
    /// the zero-allocation minibatch gather for the training hot path.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.resize(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "gather_rows: index out of range");
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
    }

    /// Reshapes to `rows × cols`, reusing the backing buffer when capacity
    /// allows. Existing element values are unspecified afterwards (newly
    /// grown elements are zero).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Consumes the matrix, returning its row-major backing buffer. Lets
    /// callers recycle the allocation through a buffer pool.
    pub fn into_vec(self) -> Vec<Scalar> {
        self.data
    }

    /// Borrowed view of the whole matrix.
    pub fn as_view(&self) -> MatrixRef<'_> {
        MatrixRef {
            rows: self.rows,
            cols: self.cols,
            data: &self.data,
        }
    }

    /// Borrowed view of the row range `start..end` — no copy, just a
    /// reinterpretation of the contiguous row-major buffer. Used to forward
    /// evaluation chunks without gathering them first.
    pub fn view_rows(&self, start: usize, end: usize) -> MatrixRef<'_> {
        assert!(start <= end && end <= self.rows, "view_rows: range");
        MatrixRef {
            rows: end - start,
            cols: self.cols,
            data: &self.data[start * self.cols..end * self.cols],
        }
    }
}

/// Borrowed row-major matrix view: a row range of a [`Matrix`], or any flat
/// slice reinterpreted with a shape (e.g. a weight block inside a flat
/// parameter vector).
#[derive(Debug, Clone, Copy)]
pub struct MatrixRef<'a> {
    rows: usize,
    cols: usize,
    data: &'a [Scalar],
}

impl<'a> MatrixRef<'a> {
    /// Wraps a slice. Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a [Scalar]) -> Self {
        assert_eq!(data.len(), rows * cols, "view size mismatch");
        Self { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The backing row-major slice.
    pub fn as_slice(&self) -> &'a [Scalar] {
        self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [Scalar] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::assert_close;
    use proptest::prelude::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.5 - 2.0);
        let b = Matrix::from_fn(4, 5, |r, c| (r as f32 - c as f32) * 0.25);
        let got = a.matmul(&b);
        let want = naive_matmul(&a, &b);
        assert_close(got.as_slice(), want.as_slice(), 1e-5);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(4, 3, |r, c| (r * c) as f32 + 1.0);
        let got = a.matmul_nt(&b);
        let want = naive_matmul(&a, &b.transpose());
        assert_close(got.as_slice(), want.as_slice(), 1e-5);
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let a = Matrix::from_fn(5, 2, |r, c| (r as f32) - (c as f32) * 0.5);
        let b = Matrix::from_fn(5, 3, |r, c| 0.1 * (r * 3 + c) as f32);
        let got = a.matmul_tn(&b);
        let want = naive_matmul(&a.transpose(), &b);
        assert_close(got.as_slice(), want.as_slice(), 1e-5);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + 2 * c) as f32);
        let x = vec![1.0, -1.0, 2.0, 0.5];
        let mut out = vec![0.0; 3];
        a.matvec_into(&x, &mut out);
        let xm = Matrix::from_vec(4, 1, x);
        let want = a.matmul(&xm);
        assert_close(&out, want.as_slice(), 1e-5);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 7, |r, c| (r * 7 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gather_rows_picks_correct_rows() {
        let a = Matrix::from_fn(4, 2, |r, c| (r * 10 + c) as f32);
        let g = a.gather_rows(&[3, 0, 3]);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.row(0), &[30.0, 31.0]);
        assert_eq!(g.row(1), &[0.0, 1.0]);
        assert_eq!(g.row(2), &[30.0, 31.0]);
    }

    #[test]
    fn gather_rows_into_reuses_buffer_and_matches_gather() {
        let a = Matrix::from_fn(6, 3, |r, c| (r * 10 + c) as f32);
        let mut out = Matrix::zeros(2, 5); // wrong shape on purpose
        a.gather_rows_into(&[5, 1, 5, 0], &mut out);
        assert_eq!(out, a.gather_rows(&[5, 1, 5, 0]));
        // Shrinking must also work and reuse capacity.
        a.gather_rows_into(&[2], &mut out);
        assert_eq!(out.rows(), 1);
        assert_eq!(out.row(0), a.row(2));
    }

    #[test]
    fn view_rows_aliases_without_copy() {
        let a = Matrix::from_fn(5, 4, |r, c| (r * 4 + c) as f32);
        let v = a.view_rows(1, 4);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 4);
        assert_eq!(v.row(0), a.row(1));
        assert_eq!(v.row(2), a.row(3));
        assert_eq!(v.as_slice(), &a.as_slice()[4..16]);
        let full = a.as_view();
        assert_eq!(full.rows(), 5);
        assert_eq!(full.as_slice(), a.as_slice());
    }

    #[test]
    #[should_panic(expected = "inner dim mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn zero_sized_matrices_work() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 0);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 0);
        assert_eq!(c.cols(), 0);
        assert!(Matrix::zeros(0, 0).is_empty());
    }

    proptest! {
        #[test]
        fn prop_matmul_identity(rows in 1usize..6, cols in 1usize..6, seed in 0u64..100) {
            let a = Matrix::from_fn(rows, cols, |r, c| {
                ((r * 31 + c * 17 + seed as usize) % 13) as f32 - 6.0
            });
            let eye = Matrix::from_fn(cols, cols, |r, c| if r == c { 1.0 } else { 0.0 });
            let out = a.matmul(&eye);
            assert_close(out.as_slice(), a.as_slice(), 1e-6);
        }

        #[test]
        fn prop_matmul_associative_with_vector(
            m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..50
        ) {
            let a = Matrix::from_fn(m, k, |r, c| ((r + c + seed as usize) % 7) as f32 - 3.0);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 2 + c + seed as usize) % 5) as f32 - 2.0);
            let ab = a.matmul(&b);
            // (A·B)ᵀ row j equals Bᵀ·(Aᵀ row j): check via nt/tn kernels
            let abt = ab.transpose();
            let bt_at = b.transpose().matmul(&a.transpose());
            assert_close(abt.as_slice(), bt_at.as_slice(), 1e-4);
        }
    }
}
