//! BLAS-1 style kernels over plain `f32` slices.
//!
//! These are the innermost loops of local SGD: parameter updates are axpy,
//! FedProx's proximal term is axpy against the anchor, SCAFFOLD's control
//! variates are two more axpys, and secure-aggregation masking is a slice
//! add. None allocates. The four kernels that carry the training FLOPs —
//! [`dot`], [`axpy`], [`gemm_nt`], [`gemm_tn`] — dispatch to explicit
//! SIMD implementations in [`crate::simd`] (AVX-512F/AVX2/SSE2/NEON,
//! runtime-detected, `GFL_SIMD` override); every tier is bit-identical to
//! the scalar reference by construction.

use crate::Scalar;

/// `y += alpha * x` (the classic axpy).
///
/// Element-wise (one multiply rounding and one add rounding per element),
/// so the SIMD tiers are trivially bit-identical.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy(alpha: Scalar, x: &[Scalar], y: &mut [Scalar]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    crate::simd::axpy(alpha, x, y);
}

/// `y = alpha * x + beta * y`.
pub fn axpby(alpha: Scalar, x: &[Scalar], beta: Scalar, y: &mut [Scalar]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// Dot product in the canonical 16-chain summation order.
///
/// The order is fixed so every SIMD dispatch tier can reproduce it
/// exactly: 16 independent stride-16 partial accumulators (chain `j` sums
/// `x[16c+j] * y[16c+j]` over ascending `c`), combined left-to-right from
/// `0.0`, then the remainder elements in ascending order. See
/// [`crate::simd`] for the bit-identity argument.
pub fn dot(x: &[Scalar], y: &[Scalar]) -> Scalar {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    crate::simd::dot(x, y)
}

/// Scales every element: `x *= alpha`.
pub fn scale(alpha: Scalar, x: &mut [Scalar]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise add: `y += x`.
pub fn add_assign(x: &[Scalar], y: &mut [Scalar]) {
    axpy(1.0, x, y);
}

/// Element-wise subtract: `y -= x`.
pub fn sub_assign(x: &[Scalar], y: &mut [Scalar]) {
    axpy(-1.0, x, y);
}

/// Fills `out` with `a - b`.
pub fn sub_into(a: &[Scalar], b: &[Scalar], out: &mut [Scalar]) {
    assert_eq!(a.len(), b.len(), "sub_into: length mismatch");
    assert_eq!(a.len(), out.len(), "sub_into: output length mismatch");
    for ((o, &ai), &bi) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = ai - bi;
    }
}

/// Squared L2 norm.
pub fn norm_sq(x: &[Scalar]) -> Scalar {
    dot(x, x)
}

/// L2 norm.
pub fn norm(x: &[Scalar]) -> Scalar {
    norm_sq(x).sqrt()
}

/// Cosine similarity between two vectors; 0.0 when either has zero norm.
pub fn cosine_similarity(x: &[Scalar], y: &[Scalar]) -> Scalar {
    let nx = norm(x);
    let ny = norm(y);
    if nx == 0.0 || ny == 0.0 {
        return 0.0;
    }
    (dot(x, y) / (nx * ny)).clamp(-1.0, 1.0)
}

/// In-place ReLU.
pub fn relu(x: &mut [Scalar]) {
    for xi in x.iter_mut() {
        if *xi < 0.0 {
            *xi = 0.0;
        }
    }
}

/// Backprop through ReLU: zeroes gradient entries where the forward
/// activation was non-positive.
pub fn relu_backward(activation: &[Scalar], grad: &mut [Scalar]) {
    assert_eq!(
        activation.len(),
        grad.len(),
        "relu_backward: length mismatch"
    );
    for (g, &a) in grad.iter_mut().zip(activation.iter()) {
        if a <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Numerically-stable in-place softmax over one logit vector.
pub fn softmax(x: &mut [Scalar]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().fold(Scalar::NEG_INFINITY, |m, &v| m.max(v));
    let mut sum = 0.0;
    for xi in x.iter_mut() {
        *xi = (*xi - max).exp();
        sum += *xi;
    }
    let inv = 1.0 / sum;
    for xi in x.iter_mut() {
        *xi *= inv;
    }
}

/// Index of the maximum element (first one on ties). Panics on empty input.
pub fn argmax(x: &[Scalar]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    let mut best_v = x[0];
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Cross-entropy `-ln(p[target])` from a probability vector, clamped away
/// from zero for stability.
pub fn cross_entropy(probs: &[Scalar], target: usize) -> Scalar {
    assert!(target < probs.len(), "target out of range");
    -(probs[target].max(1e-12)).ln()
}

/// Clips the vector to `max_norm` in place; returns the scaling applied
/// (1.0 when no clipping occurred).
pub fn clip_norm(x: &mut [Scalar], max_norm: Scalar) -> Scalar {
    let n = norm(x);
    if n <= max_norm || n == 0.0 {
        return 1.0;
    }
    let s = max_norm / n;
    scale(s, x);
    s
}

/// Weighted accumulate of many slices into `out`: `out = Σ w_i * xs_i`.
///
/// This is the aggregation kernel used at the group and global levels
/// (Lines 14–15 of Algorithm 1). `out` is fully overwritten.
pub fn weighted_sum_into(xs: &[&[Scalar]], weights: &[Scalar], out: &mut [Scalar]) {
    assert_eq!(xs.len(), weights.len(), "weighted_sum: arity mismatch");
    out.fill(0.0);
    for (&x, &w) in xs.iter().zip(weights.iter()) {
        axpy(w, x, out);
    }
}

/// Cache-block edge for the GEMM kernels below, in matrix rows per tile.
///
/// Chosen by microbenching `gemm_nt` on layer shapes from the paper workload
/// (batch 32–512 × 256–784 features): 8/16/32/64 row tiles were within noise
/// of each other and all ~1.3–2× faster than untiled traversal once the
/// stationary operand overflows L2; 32 sits safely inside a 32 KiB L1
/// (32 rows × 256 cols × 4 B = 32 KiB) while keeping loop overhead low.
pub const GEMM_TILE: usize = 32;

/// Blocked `out = A · Bᵀ` over row-major slices: `a` is `m×k`, `b` is `n×k`,
/// `out` is `m×n`, and `out[i][j] = dot(a.row(i), b.row(j))`.
///
/// Tiles the `i`/`j` loops so a block of `b` rows stays cache-resident while
/// a block of `a` rows streams against it. Each output element is still one
/// full-`k` [`dot`] in the canonical order, so results are bit-identical
/// across tilings and SIMD dispatch tiers.
pub fn gemm_nt(a: &[Scalar], b: &[Scalar], out: &mut [Scalar], m: usize, n: usize, k: usize) {
    crate::simd::gemm_nt(a, b, out, m, n, k);
}

/// Blocked `out = Aᵀ · B` over row-major slices: `a` is `r×m`, `b` is `r×n`,
/// `out` is `m×n`, and `out[i][j] = Σ_t a[t][i] * b[t][j]`.
///
/// This is the `∇W = ∇Yᵀ · X` backward kernel. Each output element
/// accumulates `a[t][i] * b[t][j]` over strictly ascending `t`, skipping
/// terms where `a[t][i] == 0.0` (the ReLU zero-skip — an exact no-op to
/// skip in f32). The accumulation order per element is fixed, so results
/// are bit-identical across blockings and SIMD dispatch tiers.
pub fn gemm_tn(a: &[Scalar], b: &[Scalar], out: &mut [Scalar], r: usize, m: usize, n: usize) {
    crate::simd::gemm_tn(a, b, out, r, m, n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::assert_close;
    use proptest::prelude::*;

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpby_matches_manual() {
        let x = [1.0, -2.0];
        let mut y = [3.0, 4.0];
        axpby(0.5, &x, 2.0, &mut y);
        assert_eq!(y, [6.5, 7.0]);
    }

    #[test]
    #[should_panic(expected = "axpy: length mismatch")]
    fn axpy_length_mismatch_panics() {
        let mut y = [0.0];
        axpy(1.0, &[1.0, 2.0], &mut y);
    }

    #[test]
    fn dot_handles_non_multiple_of_four() {
        let x: Vec<f32> = (1..=7).map(|i| i as f32).collect();
        let y = vec![1.0; 7];
        assert_eq!(dot(&x, &y), 28.0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut x = vec![1.0, 3.0, 2.0];
        softmax(&mut x);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(x[1] > x[2] && x[2] > x[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut x = vec![1000.0, 1001.0];
        softmax(&mut x);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), 1);
    }

    #[test]
    fn relu_and_backward() {
        let mut a = vec![-1.0, 0.0, 2.0];
        relu(&mut a);
        assert_eq!(a, vec![0.0, 0.0, 2.0]);
        let mut g = vec![1.0, 1.0, 1.0];
        relu_backward(&a, &mut g);
        assert_eq!(g, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn clip_norm_only_when_needed() {
        let mut x = vec![3.0, 4.0];
        assert_eq!(clip_norm(&mut x, 10.0), 1.0);
        assert_eq!(x, vec![3.0, 4.0]);
        let s = clip_norm(&mut x, 1.0);
        assert!((s - 0.2).abs() < 1e-6);
        assert!((norm(&x) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_similarity_bounds_and_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        let s = cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]);
        assert!((s - 1.0).abs() < 1e-6);
        let o = cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]);
        assert!((o + 1.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_sum_matches_manual() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let mut out = [9.0, 9.0];
        weighted_sum_into(&[&a, &b], &[0.25, 0.75], &mut out);
        assert_close(&out, &[0.25, 0.75], 1e-6);
    }

    #[test]
    fn gemm_nt_matches_per_element_dot_exactly() {
        // Shapes straddling several tile boundaries, including ragged edges.
        for (m, n, k) in [(1, 1, 1), (3, 5, 7), (33, 31, 40), (64, 65, 129)] {
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i * 7 + 3) % 11) as f32 - 5.0)
                .collect();
            let b: Vec<f32> = (0..n * k)
                .map(|i| ((i * 5 + 1) % 13) as f32 * 0.25)
                .collect();
            let mut out = vec![0.0f32; m * n];
            gemm_nt(&a, &b, &mut out, m, n, k);
            for i in 0..m {
                for j in 0..n {
                    let want = dot(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                    assert_eq!(out[i * n + j], want, "({i},{j}) m={m} n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn gemm_tn_matches_naive_transpose_product() {
        for (r, m, n) in [(1, 1, 1), (7, 5, 3), (40, 33, 31), (129, 64, 65)] {
            let a: Vec<f32> = (0..r * m).map(|i| ((i * 3 + 2) % 9) as f32 - 4.0).collect();
            let b: Vec<f32> = (0..r * n)
                .map(|i| ((i * 11 + 5) % 7) as f32 * 0.5)
                .collect();
            let mut out = vec![0.0f32; m * n];
            gemm_tn(&a, &b, &mut out, r, m, n);
            // Naive accumulation in the same (ascending t) order.
            let mut want = vec![0.0f32; m * n];
            for t in 0..r {
                for i in 0..m {
                    let av = a[t * m + i];
                    if av != 0.0 {
                        for j in 0..n {
                            want[i * n + j] += av * b[t * n + j];
                        }
                    }
                }
            }
            assert_eq!(out, want, "r={r} m={m} n={n}");
        }
    }

    #[test]
    fn cross_entropy_is_zero_for_confident_correct() {
        assert!(cross_entropy(&[0.0, 1.0], 1) < 1e-6);
        assert!(cross_entropy(&[1.0, 0.0], 1) > 10.0);
    }

    proptest! {
        #[test]
        fn prop_dot_commutative(v in proptest::collection::vec(-100.0f32..100.0, 0..64)) {
            let w: Vec<f32> = v.iter().rev().cloned().collect();
            let d1 = dot(&v, &w);
            let d2 = dot(&w, &v);
            prop_assert!((d1 - d2).abs() <= 1e-3 * (1.0 + d1.abs()));
        }

        #[test]
        fn prop_axpy_zero_alpha_is_identity(v in proptest::collection::vec(-1e3f32..1e3, 1..32)) {
            let mut y = v.clone();
            let x = vec![1.0f32; v.len()];
            axpy(0.0, &x, &mut y);
            prop_assert_eq!(y, v);
        }

        #[test]
        fn prop_softmax_is_distribution(v in proptest::collection::vec(-50.0f32..50.0, 1..32)) {
            let mut x = v;
            softmax(&mut x);
            prop_assert!(x.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
            let s: f32 = x.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }

        #[test]
        fn prop_norm_triangle_inequality(
            a in proptest::collection::vec(-100.0f32..100.0, 1..32),
        ) {
            let b: Vec<f32> = a.iter().map(|x| x * 0.5 - 1.0).collect();
            let mut sum = a.clone();
            add_assign(&b, &mut sum);
            prop_assert!(norm(&sum) <= norm(&a) + norm(&b) + 1e-3);
        }
    }
}
