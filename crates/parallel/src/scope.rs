//! Fork-join helpers over slices, running on the persistent pool in
//! [`crate::fork`].
//!
//! Scheduling is atomic index stealing: participants repeatedly claim the
//! next unprocessed index (or run of indices) from a shared counter. This
//! keeps load balanced when per-item cost is highly skewed — exactly the
//! situation in federated simulation, where client dataset sizes span an
//! order of magnitude (20–200 samples in the paper's setup).
//!
//! Outputs are written into fixed per-index slots, so results are always in
//! input order regardless of which participant processed which item.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::default_parallelism;
use crate::fork::region;

/// Work-claiming granularity for the fork-join helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chunking {
    /// Workers claim one index at a time. Best for coarse, skewed tasks
    /// (client training).
    Single,
    /// Workers claim fixed-size runs of indices. Best for fine-grained tasks
    /// (vector arithmetic) where counter contention would dominate.
    Fixed(usize),
    /// Pick a run size automatically from `len` and thread count.
    Auto,
}

impl Chunking {
    fn run_len(self, len: usize, threads: usize) -> usize {
        match self {
            Chunking::Single => 1,
            Chunking::Fixed(n) => n.max(1),
            Chunking::Auto => {
                // Aim for ~4 claims per worker to balance stealing overhead
                // against skew tolerance.
                let target = threads.saturating_mul(4).max(1);
                (len / target).max(1)
            }
        }
    }
}

/// Shared raw pointer used to hand out disjoint element writes to
/// participants. Each index is claimed exactly once through an atomic
/// cursor, so no two threads ever touch the same element.
struct SendPtr<T>(*mut T);

// SAFETY: access is partitioned by the unique-claim protocol described above.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Applies `f` to every item of `items`, returning outputs in input order.
///
/// Runs on up to [`default_parallelism`] pool participants. `f` must be
/// `Sync` because multiple workers call it concurrently.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(items, default_parallelism(), Chunking::Single, f)
}

/// [`par_map`] with explicit thread count and chunking policy.
pub fn par_map_with<T, U, F>(items: &[T], threads: usize, chunking: Chunking, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, len);
    if threads == 1 {
        return items.iter().map(f).collect();
    }

    let run = chunking.run_len(len, threads);
    let mut out: Vec<U> = Vec::with_capacity(len);
    let out_ptr = SendPtr(out.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    region(threads, |participant| {
        let out_ptr = &out_ptr;
        let mut claimed = 0u64;
        loop {
            let start = cursor.fetch_add(run, Ordering::Relaxed);
            if start >= len {
                break;
            }
            let end = (start + run).min(len);
            claimed += (end - start) as u64;
            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                // SAFETY: slot `i` belongs to this claim alone, and the
                // buffer has capacity `len`.
                unsafe { out_ptr.0.add(i).write(f(item)) };
            }
        }
        crate::stats::record_claims(claimed, participant != 0);
    });
    // SAFETY: the cursor handed out every index in 0..len exactly once and
    // `region` returned normally, so all slots are initialized. (If a worker
    // panics, `region` unwinds before this point and the written elements
    // leak — safe, and acceptable on the panic path.)
    unsafe { out.set_len(len) };
    out
}

/// Like [`par_map`], but each participant first builds private state with
/// `init` and threads it through all the items it processes.
///
/// This is the hook for expensive per-worker resources (scratch buffers,
/// workspaces): `init` runs once per participating thread per call, not once
/// per item. Note the state is per-*participant*, so anything observable in
/// the output must not depend on which items shared a state instance.
pub fn par_map_init<T, U, S, I, F>(items: &[T], init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let threads = default_parallelism().clamp(1, len);
    if threads == 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }

    let mut out: Vec<U> = Vec::with_capacity(len);
    let out_ptr = SendPtr(out.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    region(threads, |participant| {
        let out_ptr = &out_ptr;
        let mut state = init();
        let mut claimed = 0u64;
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= len {
                break;
            }
            claimed += 1;
            // SAFETY: slot `i` was claimed exactly once (see par_map_with).
            unsafe { out_ptr.0.add(i).write(f(&mut state, &items[i])) };
        }
        crate::stats::record_claims(claimed, participant != 0);
    });
    // SAFETY: every slot initialized; see par_map_with.
    unsafe { out.set_len(len) };
    out
}

/// Applies `f` to every element of `items` in place, in parallel.
///
/// Indices are claimed one at a time through an atomic cursor, so each
/// `&mut T` is handed to exactly one participant and skewed per-item cost
/// balances automatically.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    par_for_each_init(items, || (), |(), i, item| f(i, item));
}

/// [`par_for_each_mut`] with per-participant state, built once per
/// participating thread via `init`.
///
/// This is the engine's client-training workhorse: `items` are per-client
/// result slots, `init` borrows a pooled scratch buffer, and `f` runs one
/// client's local SGD into its slot.
pub fn par_for_each_init<T, S, I, F>(items: &mut [T], init: I, f: F)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut T) + Sync,
{
    let len = items.len();
    if len == 0 {
        return;
    }
    let threads = default_parallelism().clamp(1, len);
    if threads == 1 {
        let mut state = init();
        for (i, item) in items.iter_mut().enumerate() {
            f(&mut state, i, item);
        }
        return;
    }
    let base = SendPtr(items.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    region(threads, |participant| {
        let base = &base;
        let mut state = init();
        let mut claimed = 0u64;
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= len {
                break;
            }
            claimed += 1;
            // SAFETY: index `i` is claimed exactly once, so this is the only
            // live `&mut` to the element.
            let item = unsafe { &mut *base.0.add(i) };
            f(&mut state, i, item);
        }
        crate::stats::record_claims(claimed, participant != 0);
    });
}

/// Parallel map-reduce: maps each item through `map` and folds the results
/// with `reduce`, starting from `identity`.
///
/// `reduce` must be associative and commutative with respect to `identity`
/// for the result to be deterministic (per-participant partials are combined
/// in participant order, but items are assigned to participants dynamically).
pub fn par_reduce<T, A, M, R>(items: &[T], identity: A, map: M, reduce: R) -> A
where
    T: Sync,
    A: Send + Clone,
    M: Fn(&T) -> A + Sync,
    R: Fn(A, A) -> A + Sync,
{
    let len = items.len();
    if len == 0 {
        return identity;
    }
    let threads = default_parallelism().clamp(1, len);
    if threads == 1 {
        return items
            .iter()
            .fold(identity, |acc, item| reduce(acc, map(item)));
    }
    let cursor = AtomicUsize::new(0);
    let run = Chunking::Auto.run_len(len, threads);
    // Seed one accumulator per participant up front (the closure must not
    // capture `identity` itself — that would demand `A: Sync`).
    let mut partials: Vec<Option<A>> = (0..threads).map(|_| Some(identity.clone())).collect();
    let partials_ptr = SendPtr(partials.as_mut_ptr());
    region(threads, |participant| {
        let partials_ptr = &partials_ptr;
        // SAFETY: each participant id appears exactly once per region, so
        // this is the only live `&mut` to slot `participant`.
        let acc = unsafe { &mut *partials_ptr.0.add(participant) };
        let mut acc = acc.take().expect("accumulator seeded above");
        let mut claimed = 0u64;
        loop {
            let start = cursor.fetch_add(run, Ordering::Relaxed);
            if start >= len {
                break;
            }
            let end = (start + run).min(len);
            claimed += (end - start) as u64;
            for item in &items[start..end] {
                acc = reduce(acc, map(item));
            }
        }
        crate::stats::record_claims(claimed, participant != 0);
        // SAFETY: same unique slot as above.
        unsafe { partials_ptr.0.add(participant).write(Some(acc)) };
    });
    partials.into_iter().flatten().fold(identity, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |&x| x * 2);
        let expected: Vec<u64> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_with_every_chunking_matches_sequential() {
        let items: Vec<i64> = (0..101).map(|i| i * 3 - 50).collect();
        let expected: Vec<i64> = items.iter().map(|&x| x * x).collect();
        for chunking in [Chunking::Single, Chunking::Fixed(7), Chunking::Auto] {
            for threads in [1, 2, 5, 16] {
                assert_eq!(
                    par_map_with(&items, threads, chunking, |&x| x * x),
                    expected,
                    "chunking={chunking:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn par_map_init_matches_sequential_and_reuses_state() {
        let items: Vec<u64> = (0..300).collect();
        // State counts how many items this participant processed; the output
        // must not depend on it, but init must have run at least once.
        let out = par_map_init(
            &items,
            || 0u64,
            |count, &x| {
                *count += 1;
                x + 1
            },
        );
        let expected: Vec<u64> = items.iter().map(|&x| x + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_for_each_mut_touches_every_element_once() {
        let mut items = vec![0u32; 1000];
        par_for_each_mut(&mut items, |i, v| *v += i as u32 + 1);
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(v, i as u32 + 1);
        }
    }

    #[test]
    fn par_for_each_mut_empty_is_noop() {
        let mut items: Vec<u8> = Vec::new();
        par_for_each_mut(&mut items, |_, _| panic!("must not be called"));
    }

    #[test]
    fn par_for_each_init_writes_every_slot() {
        let mut items: Vec<(usize, bool)> = (0..500).map(|i| (i, false)).collect();
        par_for_each_init(&mut items, Vec::<u8>::new, |scratch, i, slot| {
            scratch.clear();
            scratch.extend_from_slice(&[1, 2, 3]);
            assert_eq!(slot.0, i);
            assert!(!slot.1, "slot {i} visited twice");
            slot.1 = true;
        });
        assert!(items.iter().all(|&(_, seen)| seen));
    }

    #[test]
    fn par_reduce_sums_like_sequential() {
        let items: Vec<u64> = (1..=10_000).collect();
        let total = par_reduce(&items, 0u64, |&x| x, |a, b| a + b);
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn par_reduce_with_nontrivial_identity() {
        let items: Vec<u64> = (1..=100).collect();
        let max = par_reduce(&items, u64::MIN, |&x| x, |a, b| a.max(b));
        assert_eq!(max, 100);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items where the first item is vastly more expensive; index stealing
        // should still finish (this is a smoke test for deadlock/livelock).
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            if x == 0 {
                (0..50_000u64).sum::<u64>()
            } else {
                x
            }
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn nested_par_map_is_sequential_but_correct() {
        let outer: Vec<u64> = (0..16).collect();
        let out = par_map(&outer, |&x| {
            let inner: Vec<u64> = (0..8).collect();
            par_map(&inner, |&y| x * 100 + y).iter().sum::<u64>()
        });
        let expected: Vec<u64> = outer
            .iter()
            .map(|&x| (0..8).map(|y| x * 100 + y).sum::<u64>())
            .collect();
        assert_eq!(out, expected);
    }
}
