//! Fork-join regions over slices, implemented with crossbeam scoped threads.
//!
//! Scheduling is atomic index stealing: workers repeatedly claim the next
//! unprocessed index (or chunk of indices) from a shared counter. This keeps
//! load balanced when per-item cost is highly skewed — exactly the situation
//! in federated simulation, where client dataset sizes span an order of
//! magnitude (20–200 samples in the paper's setup).

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::default_parallelism;

/// Work-claiming granularity for the fork-join helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chunking {
    /// Workers claim one index at a time. Best for coarse, skewed tasks
    /// (client training).
    Single,
    /// Workers claim fixed-size runs of indices. Best for fine-grained tasks
    /// (vector arithmetic) where counter contention would dominate.
    Fixed(usize),
    /// Pick a run size automatically from `len` and thread count.
    Auto,
}

impl Chunking {
    fn run_len(self, len: usize, threads: usize) -> usize {
        match self {
            Chunking::Single => 1,
            Chunking::Fixed(n) => n.max(1),
            Chunking::Auto => {
                // Aim for ~4 claims per worker to balance stealing overhead
                // against skew tolerance.
                let target = threads.saturating_mul(4).max(1);
                (len / target).max(1)
            }
        }
    }
}

/// Applies `f` to every item of `items`, returning outputs in input order.
///
/// Runs on up to [`default_parallelism`] scoped threads. `f` must be
/// `Sync` because multiple workers call it concurrently.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(items, default_parallelism(), Chunking::Single, f)
}

/// [`par_map`] with explicit thread count and chunking policy.
pub fn par_map_with<T, U, F>(items: &[T], threads: usize, chunking: Chunking, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, len);
    if threads == 1 {
        return items.iter().map(f).collect();
    }

    let mut out: Vec<Option<U>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    let run = chunking.run_len(len, threads);
    let cursor = AtomicUsize::new(0);

    // Hand each worker a disjoint set of output slots. We split the output
    // into per-index cells via raw chunks of the Option buffer: using
    // `chunks_mut(1)` would serialize, so instead we share `&out` through an
    // UnsafeCell-free design: each claimed index is written by exactly one
    // worker, which we express safely by splitting the buffer into
    // single-element mutable slices distributed through a lock-free claim.
    //
    // Safe formulation: collect (index, value) pairs per worker, then write
    // them after the join. This costs one extra buffer but avoids all
    // aliasing subtleties and keeps the code obviously correct.
    let pairs: Vec<Vec<(usize, U)>> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            handles.push(s.spawn(move |_| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(run, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + run).min(len);
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        local.push((i, f(item)));
                    }
                }
                local
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("worker thread panicked");

    for worker_pairs in pairs {
        for (i, v) in worker_pairs {
            out[i] = Some(v);
        }
    }
    out.into_iter()
        .map(|v| v.expect("every index claimed exactly once"))
        .collect()
}

/// Applies `f` to every element of `items` in place, in parallel.
///
/// Elements are partitioned into contiguous chunks, one per worker, so each
/// `&mut T` is held by exactly one thread.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    if len == 0 {
        return;
    }
    let threads = default_parallelism().clamp(1, len);
    if threads == 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let ranges = crate::chunk_ranges(len, threads);
    crossbeam::thread::scope(|s| {
        let mut rest = items;
        let mut offset = 0;
        for &(start, end) in &ranges {
            let (chunk, tail) = rest.split_at_mut(end - start);
            rest = tail;
            let f = &f;
            let base = offset;
            offset = end;
            s.spawn(move |_| {
                for (i, item) in chunk.iter_mut().enumerate() {
                    f(base + i, item);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel map-reduce: maps each item through `map` and folds the results
/// with `reduce`, starting from `identity`.
///
/// `reduce` must be associative and commutative with respect to `identity`
/// for the result to be deterministic (per-worker partials are combined in
/// worker order, but items are assigned to workers dynamically).
pub fn par_reduce<T, A, M, R>(items: &[T], identity: A, map: M, reduce: R) -> A
where
    T: Sync,
    A: Send + Clone,
    M: Fn(&T) -> A + Sync,
    R: Fn(A, A) -> A + Sync,
{
    let len = items.len();
    if len == 0 {
        return identity;
    }
    let threads = default_parallelism().clamp(1, len);
    if threads == 1 {
        return items
            .iter()
            .fold(identity, |acc, item| reduce(acc, map(item)));
    }
    let cursor = AtomicUsize::new(0);
    let run = Chunking::Auto.run_len(len, threads);
    let partials: Vec<A> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let map = &map;
            let reduce = &reduce;
            let id = identity.clone();
            handles.push(s.spawn(move |_| {
                let mut acc = id;
                loop {
                    let start = cursor.fetch_add(run, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + run).min(len);
                    for item in &items[start..end] {
                        acc = reduce(acc, map(item));
                    }
                }
                acc
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("worker thread panicked");

    partials.into_iter().fold(identity, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |&x| x * 2);
        let expected: Vec<u64> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_with_every_chunking_matches_sequential() {
        let items: Vec<i64> = (0..101).map(|i| i * 3 - 50).collect();
        let expected: Vec<i64> = items.iter().map(|&x| x * x).collect();
        for chunking in [Chunking::Single, Chunking::Fixed(7), Chunking::Auto] {
            for threads in [1, 2, 5, 16] {
                assert_eq!(
                    par_map_with(&items, threads, chunking, |&x| x * x),
                    expected,
                    "chunking={chunking:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn par_for_each_mut_touches_every_element_once() {
        let mut items = vec![0u32; 1000];
        par_for_each_mut(&mut items, |i, v| *v += i as u32 + 1);
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(v, i as u32 + 1);
        }
    }

    #[test]
    fn par_for_each_mut_empty_is_noop() {
        let mut items: Vec<u8> = Vec::new();
        par_for_each_mut(&mut items, |_, _| panic!("must not be called"));
    }

    #[test]
    fn par_reduce_sums_like_sequential() {
        let items: Vec<u64> = (1..=10_000).collect();
        let total = par_reduce(&items, 0u64, |&x| x, |a, b| a + b);
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn par_reduce_with_nontrivial_identity() {
        let items: Vec<u64> = (1..=100).collect();
        let max = par_reduce(&items, u64::MIN, |&x| x, |a, b| a.max(b));
        assert_eq!(max, 100);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items where the first item is vastly more expensive; index stealing
        // should still finish (this is a smoke test for deadlock/livelock).
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            if x == 0 {
                (0..50_000u64).sum::<u64>()
            } else {
                x
            }
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[1], 1);
    }
}
