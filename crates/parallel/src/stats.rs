//! Process-wide fork-join pool statistics.
//!
//! Cheap always-on counters (relaxed atomics, no allocation) that let the
//! observability layer report how well the pool is utilized without touching
//! simulation state:
//!
//! * **regions** — parallel broadcast regions entered ([`crate::region`]
//!   calls that actually fanned out; sequential degradations are not
//!   counted).
//! * **claims** — work items claimed through the helpers' atomic cursors.
//! * **steals** — the subset of claims made by helper workers rather than
//!   the region caller (participant 0). With perfect static balance this is
//!   `claims × (width-1)/width`; skew shows up as deviation.
//! * **busy_ns / capacity_ns** — summed participant body time vs. region
//!   wall time × width. Their ratio is pool utilization: 1.0 means no
//!   participant ever idled waiting for stragglers.
//!
//! Counters are cumulative for the process; consumers take a [`snapshot`]
//! before and after the interval of interest and diff with
//! [`PoolStats::since`]. Claim counts are accumulated per participant and
//! flushed once per region, so the per-item hot path pays nothing.

use std::sync::atomic::{AtomicU64, Ordering};

static REGIONS: AtomicU64 = AtomicU64::new(0);
static CLAIMS: AtomicU64 = AtomicU64::new(0);
static STEALS: AtomicU64 = AtomicU64::new(0);
static BUSY_NS: AtomicU64 = AtomicU64::new(0);
static CAPACITY_NS: AtomicU64 = AtomicU64::new(0);

/// Point-in-time (or, after [`PoolStats::since`], per-interval) pool
/// counters. See the module docs for field semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    pub regions: u64,
    pub claims: u64,
    pub steals: u64,
    pub busy_ns: u64,
    pub capacity_ns: u64,
}

impl PoolStats {
    /// Counter deltas accumulated since `earlier` was snapshotted.
    pub fn since(self, earlier: PoolStats) -> PoolStats {
        PoolStats {
            regions: self.regions.saturating_sub(earlier.regions),
            claims: self.claims.saturating_sub(earlier.claims),
            steals: self.steals.saturating_sub(earlier.steals),
            busy_ns: self.busy_ns.saturating_sub(earlier.busy_ns),
            capacity_ns: self.capacity_ns.saturating_sub(earlier.capacity_ns),
        }
    }

    /// Busy time over capacity, clamped to `0.0..=1.0`. Returns 0.0 when no
    /// parallel region ran in the interval (capacity 0).
    pub fn utilization(&self) -> f64 {
        if self.capacity_ns == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / self.capacity_ns as f64).min(1.0)
        }
    }
}

/// Reads the current cumulative counters.
pub fn snapshot() -> PoolStats {
    PoolStats {
        regions: REGIONS.load(Ordering::Relaxed),
        claims: CLAIMS.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
        busy_ns: BUSY_NS.load(Ordering::Relaxed),
        capacity_ns: CAPACITY_NS.load(Ordering::Relaxed),
    }
}

/// Records one completed parallel region: wall time and participant width.
pub(crate) fn record_region(wall_ns: u64, width: usize) {
    REGIONS.fetch_add(1, Ordering::Relaxed);
    CAPACITY_NS.fetch_add(wall_ns.saturating_mul(width as u64), Ordering::Relaxed);
}

/// Records one participant's total body execution time within a region.
pub(crate) fn record_busy(ns: u64) {
    BUSY_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Flushes one participant's claim tally for a region. `steal` marks claims
/// made by a helper worker rather than the region caller.
pub(crate) fn record_claims(claims: u64, steal: bool) {
    if claims == 0 {
        return;
    }
    CLAIMS.fetch_add(claims, Ordering::Relaxed);
    if steal {
        STEALS.fetch_add(claims, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_and_utilization_behave() {
        let a = PoolStats {
            regions: 1,
            claims: 10,
            steals: 4,
            busy_ns: 50,
            capacity_ns: 100,
        };
        let b = PoolStats {
            regions: 3,
            claims: 30,
            steals: 10,
            busy_ns: 250,
            capacity_ns: 300,
        };
        let d = b.since(a);
        assert_eq!(d.regions, 2);
        assert_eq!(d.claims, 20);
        assert_eq!(d.steals, 6);
        assert!((d.utilization() - 1.0).abs() < 1e-9, "clamped to 1.0");
        assert_eq!(PoolStats::default().utilization(), 0.0);
    }

    #[test]
    fn parallel_region_moves_the_counters() {
        let before = snapshot();
        crate::region(4, |_| {
            std::hint::black_box((0..10_000u64).sum::<u64>());
        });
        let delta = snapshot().since(before);
        assert!(delta.regions >= 1);
        assert!(delta.capacity_ns > 0);
        assert!(delta.busy_ns > 0);
    }

    #[test]
    fn claims_and_steals_are_flushed_by_scope_helpers() {
        let items: Vec<u64> = (0..512).collect();
        let before = snapshot();
        let out = crate::par_map_with(&items, 4, crate::Chunking::Single, |&x| x + 1);
        assert_eq!(out.len(), 512);
        let delta = snapshot().since(before);
        // Other tests may run concurrently against the same process-wide
        // counters, so assert a lower bound rather than an exact count.
        assert!(
            delta.claims >= 512,
            "Single chunking claims one item each (saw {})",
            delta.claims
        );
        assert!(delta.steals <= delta.claims);
    }
}
