//! Parallelism primitives for the Group-FEL simulator.
//!
//! Algorithm 1 of the paper runs three nested "in parallel" loops: edge
//! servers form groups in parallel, sampled groups train in parallel, and
//! clients inside a group run local SGD in parallel. This crate provides the
//! small set of data-parallel building blocks those loops need, running on a
//! persistent fork-join pool ([`fork`]) so regions cost channel sends rather
//! than OS thread spawn/join cycles.
//!
//! Three execution styles are offered:
//!
//! * [`par_map`] / [`par_for_each_mut`] / [`par_reduce`]: fork-join regions
//!   over slices, scheduled by atomic index stealing so uneven per-item work
//!   (clients with very different data sizes) balances automatically.
//! * [`par_map_init`] / [`par_for_each_init`]: the same, with worker-local
//!   state built once per participating thread (scratch buffers, workspaces).
//! * [`ThreadPool`]: a persistent pool for `'static` fire-and-forget jobs,
//!   used by long-lived simulator services (e.g. background metric sinks).
//!
//! All entry points degrade gracefully to sequential execution when the
//! requested parallelism is 1, the input is tiny, or the caller is already
//! inside a parallel region (see [`fork::in_region`]), so unit tests remain
//! deterministic and nested parallelism cannot oversubscribe the machine.

pub mod fork;
mod pool;
mod scope;
pub mod stats;

pub use fork::{in_region, region, worker_index};
pub use pool::ThreadPool;
pub use scope::{
    par_for_each_init, par_for_each_mut, par_map, par_map_init, par_map_with, par_reduce, Chunking,
};

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Global override for the default parallelism degree (0 = autodetect).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// `GFL_THREADS` environment override, read once (0 = unset/invalid).
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("GFL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Returns the default degree of parallelism used by the fork-join helpers.
///
/// Resolution order: [`set_default_parallelism`] pin (e.g. the CLI
/// `--threads` flag), then the `GFL_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]. Pinning keeps benchmarks
/// comparable across machines and forces sequential execution in tests.
pub fn default_parallelism() -> usize {
    let forced = DEFAULT_THREADS.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    let env = env_threads();
    if env > 0 {
        return env;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Pins the default parallelism degree for the whole process.
///
/// `0` restores autodetection.
pub fn set_default_parallelism(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// Splits `len` items into at most `threads` contiguous chunk ranges of
/// near-equal size. Returns `(start, end)` pairs; never returns empty chunks.
pub fn chunk_ranges(len: usize, threads: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, len);
    let base = len / threads;
    let extra = len % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for i in 0..threads {
        let sz = base + usize::from(i < extra);
        out.push((start, start + sz));
        start += sz;
    }
    debug_assert_eq!(start, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_all_items_without_overlap() {
        for len in [0usize, 1, 2, 7, 64, 1000] {
            for threads in [1usize, 2, 3, 8, 33] {
                let ranges = chunk_ranges(len, threads);
                let mut covered = 0;
                let mut prev_end = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, prev_end, "chunks must be contiguous");
                    assert!(e > s, "chunks must be non-empty");
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, len);
                if len > 0 {
                    assert!(ranges.len() <= threads.max(1));
                    assert!(ranges.len() <= len);
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_balance_within_one() {
        let ranges = chunk_ranges(100, 7);
        let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?} must differ by at most 1");
    }

    #[test]
    fn default_parallelism_is_positive_and_pinnable() {
        assert!(default_parallelism() >= 1);
        set_default_parallelism(3);
        assert_eq!(default_parallelism(), 3);
        set_default_parallelism(0);
        assert!(default_parallelism() >= 1);
    }
}
