//! A persistent thread pool for `'static` jobs.
//!
//! The fork-join helpers in [`crate::scope`] spawn scoped threads per region,
//! which is fine for coarse regions but wasteful for long-lived services. The
//! simulator uses `ThreadPool` for jobs that outlive a borrow scope: metric
//! sinks, CSV writers, and the per-edge-server grouping workers in the
//! experiment binaries.

use std::sync::Arc;

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Inner {
    /// Number of jobs submitted but not yet finished.
    pending: Mutex<usize>,
    all_done: Condvar,
}

/// A fixed-size pool of worker threads executing FIFO jobs.
///
/// Dropping the pool closes the queue and joins all workers, running any
/// jobs still queued. Use [`ThreadPool::wait`] to block until the pool is
/// idle without shutting it down.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    inner: Arc<Inner>,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let inner = Arc::new(Inner {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(threads);
        for id in 0..threads {
            let rx = rx.clone();
            let inner = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("gfl-pool-{id}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                        let mut pending = inner.pending.lock();
                        *pending -= 1;
                        if *pending == 0 {
                            inner.all_done.notify_all();
                        }
                    }
                })
                .expect("failed to spawn pool worker");
            workers.push(handle);
        }
        Self {
            tx: Some(tx),
            workers,
            inner,
        }
    }

    /// Creates a pool sized to [`crate::default_parallelism`].
    pub fn with_default_parallelism() -> Self {
        Self::new(crate::default_parallelism())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job for execution.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, job: F) {
        {
            let mut pending = self.inner.pending.lock();
            *pending += 1;
        }
        self.tx
            .as_ref()
            .expect("pool is shut down")
            .send(Box::new(job))
            .expect("pool workers exited early");
    }

    /// Blocks until every submitted job has finished.
    pub fn wait(&self) {
        let mut pending = self.inner.pending.lock();
        while *pending > 0 {
            self.inner.all_done.wait(&mut pending);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain remaining jobs and exit.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn wait_on_idle_pool_returns_immediately() {
        let pool = ThreadPool::new(2);
        pool.wait();
    }

    #[test]
    fn drop_drains_queue() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(1);
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                pool.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn at_least_one_thread() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.spawn(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reusable_after_wait() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for round in 0..3 {
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                pool.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait();
            assert_eq!(counter.load(Ordering::Relaxed), (round + 1) * 20);
        }
    }
}
