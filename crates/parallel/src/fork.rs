//! A persistent fork-join pool for borrowed parallel regions.
//!
//! The scope helpers used to spawn fresh OS threads through crossbeam scoped
//! threads on every call; at one region per group round that is thousands of
//! spawn/join cycles per simulation run. This module keeps one process-wide
//! set of workers alive and broadcasts the region body to them, so entering a
//! region costs a few channel sends and a latch wait instead of thread
//! creation.
//!
//! # Safety model
//!
//! The region body borrows the caller's stack (`&(dyn Fn(usize) + Sync)`),
//! but long-lived workers require `'static` jobs. [`region`] erases the
//! lifetime with a raw pointer and restores soundness structurally: it never
//! returns — not even by unwinding — until every broadcast job has finished
//! executing, which the completion latch guarantees (worker panics are caught
//! so they still count down).
//!
//! # Nesting
//!
//! Each thread tracks whether it is already executing inside a region via a
//! thread-local flag. Nested [`region`] calls run the body sequentially on
//! the current thread, so inner parallelism (e.g. `Network::evaluate` called
//! from a parallel client-training region) cannot oversubscribe the machine.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

thread_local! {
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Returns the stable pool index of the current thread when it is a
/// fork-pool worker (`Some(0..MAX_WORKERS)`), or `None` on any other thread
/// (including region callers, who participate as index 0 of the *region*
/// but are not pool workers).
///
/// Consumers can use this as a cheap, contention-free shard key: workers
/// keep their index for the life of the process.
pub fn worker_index() -> Option<usize> {
    WORKER_INDEX.with(Cell::get)
}

/// Returns true when the current thread is already executing inside a
/// parallel region (as the caller or as a pool worker).
///
/// Code that would otherwise fan out (evaluation, vector kernels) can use
/// this to stay sequential and avoid oversubscription; [`region`] itself
/// already does so.
pub fn in_region() -> bool {
    IN_REGION.with(Cell::get)
}

/// RAII guard that marks the current thread as inside a region.
struct RegionGuard {
    prev: bool,
}

impl RegionGuard {
    fn enter() -> Self {
        let prev = IN_REGION.with(|c| c.replace(true));
        Self { prev }
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_REGION.with(|c| c.set(prev));
    }
}

/// Completion latch counting outstanding broadcast jobs of one region.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(jobs: usize) -> Self {
        Self {
            remaining: Mutex::new(jobs),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock();
        while *remaining > 0 {
            self.done.wait(&mut remaining);
        }
    }
}

/// Lifetime-erased pointer to a region body living on the caller's stack.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine) and
// `region` keeps it alive until the latch confirms all workers are done.
unsafe impl Send for TaskPtr {}

struct Job {
    task: TaskPtr,
    participant: usize,
    latch: Arc<Latch>,
}

struct ForkPool {
    tx: Sender<Job>,
    rx: Receiver<Job>,
    spawned: Mutex<usize>,
}

/// Hard cap on pool size; far above any sane `--threads` request, it only
/// bounds damage from a misconfigured environment.
const MAX_WORKERS: usize = 256;

static POOL: OnceLock<ForkPool> = OnceLock::new();

fn pool() -> &'static ForkPool {
    POOL.get_or_init(|| {
        let (tx, rx) = unbounded();
        ForkPool {
            tx,
            rx,
            spawned: Mutex::new(0),
        }
    })
}

impl ForkPool {
    /// Lazily grows the pool until at least `needed` workers exist.
    fn ensure_workers(&'static self, needed: usize) {
        let needed = needed.min(MAX_WORKERS);
        let mut spawned = self.spawned.lock();
        while *spawned < needed {
            let id = *spawned;
            let rx = self.rx.clone();
            std::thread::Builder::new()
                .name(format!("gfl-fork-{id}"))
                .spawn(move || {
                    WORKER_INDEX.with(|c| c.set(Some(id)));
                    worker_loop(rx)
                })
                .expect("failed to spawn fork-pool worker");
            *spawned += 1;
        }
    }
}

fn worker_loop(rx: Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        let _guard = RegionGuard::enter();
        // SAFETY: `region` waits on the latch before returning, so the
        // pointee outlives this call; we count down only after it finishes.
        let body = unsafe { &*job.task.0 };
        let started = std::time::Instant::now();
        if catch_unwind(AssertUnwindSafe(|| body(job.participant))).is_err() {
            job.latch.panicked.store(true, Ordering::SeqCst);
        }
        crate::stats::record_busy(started.elapsed().as_nanos() as u64);
        job.latch.count_down();
    }
}

/// Runs `body(participant)` on `width` participants in parallel: the calling
/// thread is participant 0 and pool workers take 1..`width`. Returns once
/// every participant has finished.
///
/// Participants coordinate work among themselves (typically with an atomic
/// index cursor over a shared slice). `width <= 1` and nested calls (from
/// inside another region) degrade to `body(0)` on the current thread.
///
/// Panics in any participant are propagated to the caller after all
/// participants have stopped.
pub fn region<F>(width: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    if width <= 1 || in_region() {
        let _guard = RegionGuard::enter();
        body(0);
        return;
    }

    let pool = pool();
    let helpers = width - 1;
    pool.ensure_workers(helpers);
    let latch = Arc::new(Latch::new(helpers));
    let region_started = std::time::Instant::now();

    let wide: &(dyn Fn(usize) + Sync) = &body;
    // SAFETY: erases the borrow's lifetime. Sound because every path out of
    // this function first waits on `latch`, which counts down exactly once
    // per broadcast job after the pointee call (even on worker panic).
    let task = TaskPtr(unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(wide)
    });
    for participant in 1..width {
        pool.tx
            .send(Job {
                task,
                participant,
                latch: Arc::clone(&latch),
            })
            .expect("fork-pool workers exited");
    }

    let caller = {
        let _guard = RegionGuard::enter();
        let started = std::time::Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| body(0)));
        crate::stats::record_busy(started.elapsed().as_nanos() as u64);
        result
    };
    // Must not unwind past here before the workers are done with `body`.
    latch.wait();
    crate::stats::record_region(region_started.elapsed().as_nanos() as u64, width);
    if let Err(payload) = caller {
        resume_unwind(payload);
    }
    if latch.panicked.load(Ordering::SeqCst) {
        panic!("parallel region worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn region_runs_every_participant_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
        region(6, |p| {
            hits[p].fetch_add(1, Ordering::SeqCst);
        });
        for (p, hit) in hits.iter().enumerate() {
            assert_eq!(hit.load(Ordering::SeqCst), 1, "participant {p}");
        }
    }

    #[test]
    fn width_one_runs_inline() {
        let caller = std::thread::current().id();
        region(1, |p| {
            assert_eq!(p, 0);
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    #[test]
    fn nested_region_degrades_to_sequential() {
        let inner_widths = Mutex::new(Vec::new());
        region(4, |_| {
            assert!(in_region());
            region(4, |p| {
                inner_widths.lock().push(p);
            });
        });
        // Every nested call ran exactly its participant 0, inline.
        let widths = inner_widths.lock();
        assert_eq!(widths.len(), 4);
        assert!(widths.iter().all(|&p| p == 0));
        assert!(!in_region());
    }

    #[test]
    fn regions_are_reusable_back_to_back() {
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            region(4, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 400);
    }

    #[test]
    fn worker_panic_propagates_after_join() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            region(4, |p| {
                if p == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        assert!(!in_region());
        // The pool must still be usable afterwards.
        let total = AtomicUsize::new(0);
        region(4, |_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn worker_index_is_stable_per_worker_and_none_on_the_caller() {
        let seen = Mutex::new(Vec::new());
        region(4, |p| {
            let idx = worker_index();
            if p == 0 {
                // The calling thread is a region participant, not a pool
                // worker — unless this test thread happens to *be* a pool
                // worker, which it is not.
                assert_eq!(idx, None);
            } else {
                let idx = idx.expect("pool workers must report an index");
                assert!(idx < MAX_WORKERS);
                seen.lock().push(idx);
            }
        });
        // All three helper jobs ran on pool workers (a fast worker may
        // take more than one job, so distinct indices are 1..=3).
        let mut indices = seen.lock().clone();
        assert_eq!(indices.len(), 3);
        indices.sort_unstable();
        indices.dedup();
        assert!((1..=3).contains(&indices.len()));
    }

    #[test]
    fn caller_panic_propagates_after_join() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            region(3, |p| {
                if p == 0 {
                    panic!("caller boom");
                }
            });
        }));
        assert!(result.is_err());
        assert!(!in_region());
    }
}
